"""Ablation: surrogate screening vs full simulation on a 132-cell sweep.

The claim behind ``screening="screen"`` (:mod:`repro.bench.surrogate`)
is that a sweep can skip simulating most of its cells — answering them
from the bias-calibrated analytic model — *without changing any
conclusion the sweep exists to draw*.  This bench runs both arms over
the same grid and checks the claim end to end:

* the screened arm executes (calibration + contested cells) at most 30%
  of the grid;
* every predicted cell's throughput and latency fall within the
  prediction's stated error bound of the full-simulation value;
* the strategy-winner conclusion (embedded vs separate, with the
  screen's tie tolerance) matches the full arm on every scenario;
* the bottleneck-crossover conclusion — the stripe-factor knee where
  throughput saturates — matches the full arm on every curve;
* ``screening="off"`` remains byte-identical to the plain engine.

Grid: the three paper Paragon cases x {embedded, separate} x 11 stripe
factors x 2 stripe units.  Calibration cells (5 per (pipeline, case)
group) span the knee and both stripe units, because the first-order
model's error regime shifts with both.
"""

import json
import math
from dataclasses import replace

from benchmarks.conftest import BENCH_CFG
from repro.bench.cases import paper_cases
from repro.bench.engine import ExperimentSpec, SweepRunner
from repro.bench.store import ResultStore
from repro.bench.surrogate import TIE_TOLERANCE, SurrogateScreen
from repro.trace.report import format_table

STRIPE_FACTORS = (4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128)
STRIPE_UNITS = (65536, 131072)
PIPELINES = ("embedded", "separate")
CASES = (1, 2, 3)

#: (stripe_factor, stripe_unit) cells simulated per (case, pipeline)
#: group to calibrate the screen: the sf extremes and the knee at the
#: default stripe unit, plus two low-sf cells at the doubled unit (the
#: model's I/O error is stripe-unit-dependent in the I/O-bound regime).
CALIBRATION_POINTS = (
    (4, 65536), (16, 65536), (128, 65536), (6, 131072), (16, 131072),
)

#: A cell's throughput is "saturated" within this fraction of the
#: curve's plateau; the knee is the first saturated stripe factor.
KNEE_TOLERANCE = 0.95

MAX_EXECUTED_FRACTION = 0.30


def _grid_specs():
    paragon_cases = {
        c.case_number: c
        for c in paper_cases()
        if c.preset.name == "Intel Paragon"
    }
    keys, specs = [], {}
    for cn in CASES:
        for pipe in PIPELINES:
            for sf in STRIPE_FACTORS:
                for su in STRIPE_UNITS:
                    spec = ExperimentSpec.for_case(
                        pipe, paragon_cases[cn], cfg=BENCH_CFG
                    )
                    spec = replace(
                        spec,
                        fs=replace(spec.fs, stripe_factor=sf, stripe_unit=su),
                    )
                    keys.append((cn, pipe, sf, su))
                    specs[(cn, pipe, sf, su)] = spec
    return keys, specs


def _knee(curve):
    """First stripe factor whose throughput reaches the plateau."""
    plateau = max(curve.values())
    return min(sf for sf in sorted(curve) if curve[sf] >= KNEE_TOLERANCE * plateau)


def _winner(tp_embedded, tp_separate):
    gap = math.log(tp_embedded) - math.log(tp_separate)
    if abs(gap) <= TIE_TOLERANCE:
        return "tie"
    return "embedded" if gap > 0 else "separate"


def _run_arms(tmp_path):
    keys, specs = _grid_specs()

    # Full arm: every cell simulated.
    with SweepRunner(jobs=1, store=ResultStore(tmp_path / "full")) as runner:
        full = dict(zip(keys, runner.run([specs[k] for k in keys])))

    # Screened arm: simulate the calibration cells, plan, simulate only
    # the contested cells, predict the rest.
    screen_store = ResultStore(tmp_path / "screen")
    cal_keys = [
        (cn, pipe, sf, su)
        for cn in CASES
        for pipe in PIPELINES
        for sf, su in CALIBRATION_POINTS
    ]
    with SweepRunner(jobs=1, store=screen_store) as runner:
        runner.run([specs[k] for k in cal_keys])
        screen = SurrogateScreen(screen_store)
        plan = screen.plan([specs[k] for k in keys], "screen")
        simulate_keys = {
            keys[d.index] for d in plan.decisions if d.action == "simulate"
        }
        executed = set(cal_keys) | simulate_keys
        runner.run([specs[k] for k in simulate_keys - set(cal_keys)])
    screened = {}
    for d in plan.decisions:
        k = keys[d.index]
        if k in executed:
            screened[k] = ("simulated", screen_store.get(specs[k]))
        else:
            screened[k] = ("predicted", d.prediction)
    return keys, specs, full, screened, executed, plan


def test_ablation_surrogate_screening(benchmark, emit, tmp_path):
    keys, specs, full, screened, executed, plan = benchmark.pedantic(
        lambda: _run_arms(tmp_path), rounds=1, iterations=1
    )

    # 1. Execution budget: the screen must skip at least 70% of cells.
    fraction = len(executed) / len(keys)
    assert fraction <= MAX_EXECUTED_FRACTION, (len(executed), len(keys))

    # 2. Soundness: every predicted metric within its stated bound.
    violations = []
    for k, (how, v) in screened.items():
        if how != "predicted":
            continue
        sim = full[k]
        err_tp = abs(v.throughput / sim.throughput - 1)
        err_lat = abs(v.latency / sim.latency - 1)
        if err_tp > v.bound_tp or err_lat > v.bound_lat:
            violations.append((k, err_tp, v.bound_tp, err_lat, v.bound_lat))
    assert not violations, violations

    def tp(k):
        how, v = screened[k]
        return v.throughput

    # 3. Strategy-winner conclusion identical on every scenario.
    for cn in CASES:
        for sf in STRIPE_FACTORS:
            for su in STRIPE_UNITS:
                ka = (cn, "embedded", sf, su)
                kb = (cn, "separate", sf, su)
                w_full = _winner(full[ka].throughput, full[kb].throughput)
                w_scr = _winner(tp(ka), tp(kb))
                assert w_full == w_scr, (cn, sf, su, w_full, w_scr)

    # 4. Bottleneck-crossover conclusion (stripe-factor knee) identical
    #    on every curve.
    for cn in CASES:
        for pipe in PIPELINES:
            for su in STRIPE_UNITS:
                curve_full = {
                    sf: full[(cn, pipe, sf, su)].throughput
                    for sf in STRIPE_FACTORS
                }
                curve_scr = {
                    sf: tp((cn, pipe, sf, su)) for sf in STRIPE_FACTORS
                }
                assert _knee(curve_full) == _knee(curve_scr), (cn, pipe, su)

    # 5. screening="off" is byte-identical to the plain engine path.
    probe = replace(specs[keys[0]], screening="off")
    with SweepRunner(jobs=1) as runner:
        off = runner.run_one(probe).to_dict()
    assert json.dumps(off, sort_keys=True) == json.dumps(
        full[keys[0]].to_dict(), sort_keys=True
    )

    n_pred = sum(1 for how, _ in screened.values() if how == "predicted")
    worst_tp = max(
        (abs(v.throughput / full[k].throughput - 1)
         for k, (how, v) in screened.items() if how == "predicted"),
        default=0.0,
    )
    worst_lat = max(
        (abs(v.latency / full[k].latency - 1)
         for k, (how, v) in screened.items() if how == "predicted"),
        default=0.0,
    )
    emit(
        "ablation_surrogate_screening",
        format_table(
            ["quantity", "value"],
            [
                ["grid cells", len(keys)],
                ["executed (calibration + contested)", len(executed)],
                ["executed fraction", f"{fraction:.1%}"],
                ["predicted cells", n_pred],
                ["plan reasons", json.dumps(plan.summary(), sort_keys=True)],
                ["bound violations", 0],
                ["worst predicted throughput error", f"{worst_tp:.3f}"],
                ["worst predicted latency error", f"{worst_lat:.3f}"],
                ["strategy-winner mismatches", 0],
                ["knee mismatches", 0],
            ],
            title="Surrogate screening vs full simulation (132-cell sweep)",
        ),
    )
