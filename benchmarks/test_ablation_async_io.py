"""Ablation: asynchronous vs synchronous reads on identical hardware.

The paper attributes the SP's inferior scaling to PIOFS' missing async
API, but its SP and Paragon runs differ in *everything*.  This ablation
holds the machine fixed (the SP preset, whose fast CPUs make the
in-cycle read visible) and flips only the file-system API, isolating the
overlap effect: with `iread`, the read phase vanishes from the Doppler
cycle; with synchronous reads it sits inside it.

(The converse regime is also checked implicitly by Table 1: once the
stripe directories' disks saturate, the beat is the disk cycle and
overlap cannot help.)
"""

from benchmarks.conftest import BENCH_CFG
from repro.bench.experiments import run_ablation_async
from repro.trace.report import format_table


def test_ablation_async_io(benchmark, emit):
    out = benchmark.pedantic(
        lambda: run_ablation_async(case_number=1, cfg=BENCH_CFG),
        rounds=1,
        iterations=1,
    )
    rows = [
        [kind, r.throughput, r.latency,
         r.measurement.task_stats["doppler"].recv,
         r.measurement.task_stats["doppler"].compute]
        for kind, r in out.items()
    ]
    emit(
        "ablation_async_io",
        format_table(
            ["fs kind", "throughput", "latency (s)", "doppler recv (s)", "doppler comp (s)"],
            rows,
            title="Async (pfs) vs sync (piofs) reads, SP machine, sf=80, case 1",
        ),
    )
    # Async overlap hides the read phase entirely; sync pays it in-cycle.
    assert out["pfs"].throughput > 1.15 * out["piofs"].throughput
    assert out["pfs"].measurement.task_stats["doppler"].recv < 0.01
    assert out["piofs"].measurement.task_stats["doppler"].recv > 0.03
