"""Ablation: I/O strategy x stripe factor at the 100-node case.

Crosses the independent-read baseline with the two collective-style
strategies (data sieving, two-phase) across stripe factors.  The CPI
file layout here is range-major — each node's slab is one contiguous
extent — so the classic noncontiguous-access wins do not apply; what
the model should show instead is:

* two-phase's unit-aligned, balanced chunks beat the baseline while the
  stripe directories are the bottleneck (slab extents straddle units
  unevenly), at the price of a redistribution exchange;
* data sieving reads strictly more bytes (alignment padding) for the
  same request count, a small loss in the disk-bound regime;
* once enough stripe directories hide the read behind computation, the
  strategy choice washes out.
"""

from benchmarks.conftest import BENCH_CFG
from repro.bench.experiments import run_ablation_io_strategy
from repro.trace.report import grouped_bar_chart

STRATEGIES = ("embedded-io", "data-sieving", "collective-two-phase")
FACTORS = (4, 16, 64)


def test_ablation_io_strategy(benchmark, emit):
    out = benchmark.pedantic(
        lambda: run_ablation_io_strategy(
            strategies=STRATEGIES, stripe_factors=FACTORS, cfg=BENCH_CFG
        ),
        rounds=1,
        iterations=1,
    )
    groups = {
        f"sf={sf}": {s: out[(s, sf)].throughput for s in STRATEGIES}
        for sf in FACTORS
    }
    emit(
        "ablation_io_strategy",
        grouped_bar_chart(
            groups,
            title="Case 3 (100 nodes) throughput by I/O strategy "
            "and stripe factor",
            unit="CPIs/s",
        ),
    )

    # Every strategy still rides the stripe-factor knee.
    for s in STRATEGIES:
        thr = [out[(s, sf)].throughput for sf in FACTORS]
        assert all(thr[i] <= thr[i + 1] * 1.02 for i in range(len(thr) - 1))

    for sf in FACTORS:
        base = out[("embedded-io", sf)]
        sieve = out[("data-sieving", sf)]
        two_phase = out[("collective-two-phase", sf)]
        # Sieving pads every read out to stripe-unit alignment: strictly
        # more bytes off the disks for the same request count.
        assert (sieve.disk_stats["bytes_served"]
                > base.disk_stats["bytes_served"])
        # Two-phase reads exactly the cube — chunks partition it.
        assert (two_phase.disk_stats["bytes_served"]
                == base.disk_stats["bytes_served"])

    # Disk-bound regime: balanced unit-aligned chunks beat uneven slab
    # extents despite the redistribution exchange; padding costs sieving.
    assert (out[("collective-two-phase", 16)].throughput
            > out[("embedded-io", 16)].throughput)
    assert (out[("data-sieving", 16)].throughput
            <= out[("embedded-io", 16)].throughput)
    # Compute-bound regime: the read is hidden, strategies converge.
    thr64 = [out[(s, 64)].throughput for s in STRATEGIES]
    assert max(thr64) < 1.05 * min(thr64)
