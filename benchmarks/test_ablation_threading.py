"""Ablation: single-threaded vs multithreaded (SMP) task nodes.

The paper's predecessor work (Liao et al., IPPS 1999) ran this same
pipeline with receive/compute/send as concurrent threads on SMP nodes.
This ablation reruns key Table-1 cells in both execution models:

* on the SP with PIOFS (no async I/O API), the receive thread recovers
  the read/compute overlap *in software* — threading substitutes for
  the missing ``iread``;
* where the pipeline is compute-bound or disk-saturated, threading buys
  little throughput;
* per-CPI latency never improves (each datum still crosses every phase,
  now plus intra-node queue handoffs).
"""

from benchmarks.conftest import BENCH_CFG
from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineExecutor
from repro.core.pipeline import NodeAssignment, build_embedded_pipeline
from repro.machine.presets import ibm_sp, paragon
from repro.stap.params import STAPParams
from repro.trace.report import format_table

PARAMS = STAPParams()

GRID = [
    ("Paragon PFS sf=64, case 1", paragon(), FSConfig("pfs", 64), 1),
    ("Paragon PFS sf=16, case 3", paragon(), FSConfig("pfs", 16), 3),
    ("SP PIOFS sf=80, case 1", ibm_sp(), FSConfig("piofs", 80), 1),
    ("SP PIOFS sf=80, case 3", ibm_sp(), FSConfig("piofs", 80), 3),
]


def _run_grid():
    out = {}
    for label, preset, fs, case in GRID:
        spec = build_embedded_pipeline(NodeAssignment.case(case, PARAMS))
        row = {}
        for threaded in (False, True):
            cfg = ExecutionConfig(
                n_cpis=BENCH_CFG.n_cpis, warmup=BENCH_CFG.warmup, threaded=threaded
            )
            row[threaded] = PipelineExecutor(spec, PARAMS, preset, fs, cfg).run()
        out[label] = row
    return out


def test_ablation_threading(benchmark, emit):
    out = benchmark.pedantic(_run_grid, rounds=1, iterations=1)
    rows = []
    for label, pair in out.items():
        seq, thr = pair[False], pair[True]
        rows.append(
            [label, seq.throughput, thr.throughput,
             thr.throughput / seq.throughput, seq.latency, thr.latency]
        )
    emit(
        "ablation_threading",
        format_table(
            ["configuration", "thr 1-thread", "thr SMP", "gain",
             "lat 1-thread (s)", "lat SMP (s)"],
            rows,
            title="Single-threaded vs SMP (phase-threaded) nodes — IPPS'99 design",
        ),
    )
    # Threading substitutes for the missing async API on PIOFS...
    sp1 = out["SP PIOFS sf=80, case 1"]
    assert sp1[True].throughput > 1.3 * sp1[False].throughput
    # ...but cannot beat saturated stripe-directory disks.
    p16 = out["Paragon PFS sf=16, case 3"]
    assert abs(p16[True].throughput - p16[False].throughput) < 0.03 * p16[False].throughput
    # Throughput never decreases in any configuration.
    for pair in out.values():
        assert pair[True].throughput >= 0.99 * pair[False].throughput
