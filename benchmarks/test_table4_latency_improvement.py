"""Benchmark: Table 4 — % latency improvement from combining PC + CFAR.

Regenerates the paper's Table 4 from the Table 1 and Table 3 sweeps and
checks its trend: the improvement percentage decreases as the number of
nodes goes up ("scalability of the parallelization tends to decrease
when more processors are used").
"""

from repro.bench.experiments import run_table4


def test_table4_latency_improvement(benchmark, emit, table1, table3):
    result = benchmark.pedantic(
        lambda: run_table4(table1=table1, table3=table3), rounds=1, iterations=1
    )
    emit("table4_latency_improvement", result.render())

    for fs, per_case in result.improvements.items():
        values = [per_case[c] for c in sorted(per_case)]
        # Positive improvement everywhere...
        assert all(v > 0 for v in values), (fs, values)
        # ...decreasing with node count.
        assert all(values[i] >= values[i + 1] for i in range(len(values) - 1)), (
            fs,
            values,
        )
