"""Ablation: multi-tenant pipelines contending for one shared PFS.

The paper evaluates each I/O strategy with the machine to itself; this
bench co-schedules 1..4 case-1 tenant pipelines on one substrate (shared
stripe directories, shared mesh) and measures what each tenant keeps of
its solo throughput, which strategy pairs interfere worst, and how many
CPIs miss the read deadline once the disks are oversubscribed.
"""

from benchmarks.conftest import BENCH_CFG
from repro.bench.experiments import run_ablation_interference


def test_ablation_interference(benchmark, emit, engine_runner):
    out = benchmark.pedantic(
        lambda: run_ablation_interference(
            tenant_counts=(1, 2, 3, 4),
            strategies=("embedded-io", "separate-io"),
            stripe_factors=(4, 16),
            cfg=BENCH_CFG,
            runner=engine_runner,
        ),
        rounds=1,
        iterations=1,
    )
    emit("ablation_interference", out.render())

    # Sharing the stripe directories cannot make anyone faster, and by
    # four tenants the contention must be plainly measurable.
    for (sf, _n), scenario in out.scaling.items():
        for name, tenant in zip(scenario.spec.tenant_names(),
                                scenario.spec.tenants):
            frac = out.degradation(
                sf, tenant.pipeline, scenario.tenants[name].throughput
            )
            assert frac <= 1.02
    worst = min(
        out.degradation(sf, t.pipeline, s.tenants[n].throughput)
        for (sf, cnt), s in out.scaling.items() if cnt == 4
        for n, t in zip(s.spec.tenant_names(), s.spec.tenants)
    )
    assert worst < 0.9, "4-way sharing should cost real throughput"
