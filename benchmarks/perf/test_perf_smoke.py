"""Perf-regression smoke test against the committed baseline.

Runs the cheap sections of the perf suite (kernel micro + one small
pipeline cell) and compares them to ``BENCH_pr7.json`` at the repository
root.  It fails when either

* the function-call count grows more than 20% over the baseline (a
  scheduling-path regression — call counts are deterministic, so this is
  stable across machines), or
* the cell's result hash changes (the optimized kernel stopped being
  bit-identical — a determinism break, which would also invalidate every
  cached experiment result).

Wall-clock times are recorded in the baseline for human comparison but
never asserted on.  Run ``python -m repro.bench.perfsuite --write
BENCH_pr7.json`` to refresh the baseline after an intentional change.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.bench import perfsuite

BASELINE_PATH = pathlib.Path(__file__).resolve().parents[2] / "BENCH_pr7.json"


@pytest.fixture(scope="module")
def baseline():
    if not BASELINE_PATH.exists():
        pytest.skip(f"no committed baseline at {BASELINE_PATH}")
    return json.loads(BASELINE_PATH.read_text())


def test_smoke_cell_within_baseline(baseline):
    current = {"cell_smoke": perfsuite._SECTIONS["cell_smoke"]()}
    failures = perfsuite.check_against(baseline, current, tolerance=0.20)
    assert not failures, "; ".join(failures)


def test_kernel_ops_within_baseline(baseline):
    current = {"kernel_ops": perfsuite.measure_kernel_ops()}
    failures = perfsuite.check_against(baseline, current, tolerance=0.20)
    assert not failures, "; ".join(failures)


def test_kernel_ops_calendar_within_baseline(baseline):
    current = {
        "kernel_ops_calendar": perfsuite.measure_kernel_ops_calendar()
    }
    failures = perfsuite.check_against(baseline, current, tolerance=0.20)
    assert not failures, "; ".join(failures)
