"""Shared machinery for the benchmark suite.

Each benchmark regenerates one paper table/figure (or an ablation) and
emits the rendered artifact to ``results/<name>.txt`` as well as the
terminal (uncaptured), so ``pytest benchmarks/ --benchmark-only`` leaves
a complete set of paper-comparable outputs behind.

The three table sweeps are the expensive part (9 pipeline simulations
each); a session-scoped cache shares them with the figure benchmarks,
which only re-render.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.engine import SweepRunner
from repro.bench.experiments import run_table1, run_table2, run_table3
from repro.bench.store import ResultStore
from repro.core.context import ExecutionConfig

#: Simulation depth for every benchmark sweep.
BENCH_CFG = ExecutionConfig(n_cpis=8, warmup=2)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def pytest_collection_modifyitems(items):
    """Run the table sweeps first so the figure benchmarks (which only
    re-render cached sweeps) never trigger a duplicate computation."""

    def order(item):
        name = item.module.__name__
        if "table" in name:
            return (0, name)
        if "fig" in name:
            return (1, name)
        return (2, name)

    items.sort(key=order)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir, capsys):
    """emit(name, text): save an artifact and print it uncaptured."""

    def _emit(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n[saved to {path}]")

    return _emit


@pytest.fixture(scope="session")
def sweep_cache():
    """Session cache so figures reuse the table sweeps."""
    return {}


def cached(cache, key, producer):
    if key not in cache:
        cache[key] = producer()
    return cache[key]


@pytest.fixture(scope="session")
def engine_runner(tmp_path_factory):
    """Serial engine runner with a session-scoped result store.

    Explicit ``jobs=1`` keeps the timing benchmarks comparable (no pool
    startup noise), and pointing the content-addressed store at a temp
    directory keeps benchmark runs hermetic — nothing leaks into the
    repository's ``.cache/`` and nothing stale is read from it.
    """
    store = ResultStore(tmp_path_factory.mktemp("experiment-cache"))
    return SweepRunner(jobs=1, store=store)


@pytest.fixture(scope="session")
def table1(sweep_cache, engine_runner):
    return cached(
        sweep_cache, "t1", lambda: run_table1(cfg=BENCH_CFG, runner=engine_runner)
    )


@pytest.fixture(scope="session")
def table2(sweep_cache, engine_runner):
    return cached(
        sweep_cache, "t2", lambda: run_table2(cfg=BENCH_CFG, runner=engine_runner)
    )


@pytest.fixture(scope="session")
def table3(sweep_cache, engine_runner):
    return cached(
        sweep_cache, "t3", lambda: run_table3(cfg=BENCH_CFG, runner=engine_runner)
    )
