"""Benchmark: Table 3 — pulse compression + CFAR combined (§6).

Regenerates the paper's Table 3: the 6-task pipeline with the last two
tasks merged onto their combined node count (same totals as Table 1).
Checks §6's claims: latency improves in every configuration; throughput
does not decrease (Eq. 14).
"""

from benchmarks.conftest import BENCH_CFG
from repro.bench.experiments import run_table3


def test_table3_task_combination(benchmark, emit, sweep_cache, table1):
    result = benchmark.pedantic(
        lambda: run_table3(cfg=BENCH_CFG), rounds=1, iterations=1
    )
    sweep_cache["t3"] = result
    emit("table3_task_combination", result.render())

    for fs in result.fs_labels():
        for case in (1, 2, 3):
            r7 = table1.cell(fs, case)
            r6 = result.cell(fs, case)
            # §6.1: latency improves for all cases on all file systems.
            assert r6.latency < r7.latency, (fs, case)
            # Eq. 14: throughput does not decrease (3% measurement noise).
            assert r6.throughput > 0.97 * r7.throughput, (fs, case)
