"""Ablation: watching the bottleneck migrate from disks to compute.

The stripe-factor sweep (``test_fig_stripe_sweep``) shows throughput
climbing to a knee; this ablation uses the live-metrics layer to show
*why*.  Each cell runs with the sampler on (0.25 s simulated interval)
and is reduced to a :func:`~repro.obs.report.bottleneck_profile`:

* at small stripe factors the few servers run near-saturated
  (``disk_util`` ~0.9) behind deep request queues — the pipeline is
  I/O-bound and compute nodes idle waiting for slabs;
* adding stripe directories drains the queues and pushes utilization
  into the compute nodes, until past the knee the binding resource is
  the Doppler task's arithmetic, not the file system.

The emitted artifact tabulates the handoff; the assertions pin its
shape (monotone utilization crossover, queue drain, and the disk ->
compute flip of the classified bottleneck).
"""

from benchmarks.conftest import BENCH_CFG
from repro.bench.experiments import run_ablation_bottleneck_migration
from repro.obs.report import bottleneck_profile, series_by_name, sparkline
from repro.trace.report import format_table

FACTORS = (4, 8, 16, 32, 64)


def test_ablation_bottleneck_migration(benchmark, emit, engine_runner):
    out = benchmark.pedantic(
        lambda: run_ablation_bottleneck_migration(
            stripe_factors=FACTORS, cfg=BENCH_CFG, runner=engine_runner
        ),
        rounds=1,
        iterations=1,
    )
    profiles = {sf: bottleneck_profile(out[sf]) for sf in FACTORS}

    rows = [
        [
            f"sf={sf}",
            out[sf].throughput,
            profiles[sf]["disk_util"],
            profiles[sf]["mean_queue_depth"],
            profiles[sf]["compute_util"],
            profiles[sf]["bottleneck"],
        ]
        for sf in FACTORS
    ]
    # Queue-depth shape of the most and least striped cells, from the
    # sampled series of stripe server 0.
    sparks = []
    for sf in (FACTORS[0], FACTORS[-1]):
        depth = series_by_name(out[sf].metrics, "pfs_server_queue_depth")
        series = depth['pfs_server_queue_depth{server="0"}']
        sparks.append(f"  sf={sf:<3d} server-0 queue  {sparkline(series['v'])}")
    emit(
        "ablation_bottleneck_migration",
        format_table(
            ["cell", "thr (CPIs/s)", "disk util", "mean queue", "compute util",
             "bottleneck"],
            rows,
            title="Case 3 (100 nodes): bottleneck migration across stripe "
            "factors (metrics @ 0.25 s)",
        )
        + "\n\n" + "\n".join(sparks),
    )

    utils = [profiles[sf] for sf in FACTORS]
    # Disks cool off monotonically as directories are added ...
    assert all(
        a["disk_util"] > b["disk_util"] for a, b in zip(utils, utils[1:])
    )
    # ... while the freed pipeline pushes work into the compute nodes.
    assert all(
        a["compute_util"] < b["compute_util"] for a, b in zip(utils, utils[1:])
    )
    # I/O-bound end: saturated servers, idle compute.
    assert profiles[FACTORS[0]]["disk_util"] > 0.85
    assert profiles[FACTORS[0]]["bottleneck"] == "disk"
    # Compute-bound end: the handoff has completed and the queues drained.
    assert profiles[FACTORS[-1]]["bottleneck"] == "compute"
    assert (
        profiles[FACTORS[-1]]["mean_queue_depth"]
        < 0.25 * max(p["mean_queue_depth"] for p in profiles.values())
    )
