"""Benchmark: Figure 7 — bar charts of the combined-task results."""

from benchmarks.conftest import BENCH_CFG, cached
from repro.bench.experiments import run_table3


def test_fig7_combined_charts(benchmark, emit, sweep_cache):
    table3 = cached(sweep_cache, "t3", lambda: run_table3(cfg=BENCH_CFG))
    chart = benchmark.pedantic(table3.render_charts, rounds=1, iterations=1)
    emit("fig7_combined_charts", chart)
    assert "throughput" in chart and "latency" in chart
