"""Micro-benchmarks of the STAP numeric kernels.

These time the *actual numpy kernels* (not the simulation) on the
full-size cube, giving per-kernel wall-time baselines for anyone reusing
:mod:`repro.stap` as a plain signal-processing library.
"""

import numpy as np
import pytest

from repro.stap.beamform import beamform
from repro.stap.cfar import ca_cfar
from repro.stap.chain import stap_chain
from repro.stap.doppler import doppler_process
from repro.stap.params import STAPParams
from repro.stap.pulse import pulse_compress
from repro.stap.scenario import Scenario, make_cube
from repro.stap.weights import compute_weights_easy, compute_weights_hard


@pytest.fixture(scope="module")
def params():
    return STAPParams()


@pytest.fixture(scope="module")
def cube(params):
    return make_cube(params, Scenario.standard(params), 0)


@pytest.fixture(scope="module")
def dop(params, cube):
    return doppler_process(cube, params)


def test_bench_cube_generation(benchmark, params):
    sc = Scenario.standard(params)
    cube = benchmark(lambda: make_cube(params, sc, 1))
    assert cube.shape == params.cube_shape


def test_bench_doppler(benchmark, params, cube):
    out = benchmark(lambda: doppler_process(cube, params))
    assert out.easy.shape[0] == params.n_easy_bins


def test_bench_weights_easy(benchmark, params, dop):
    ws = benchmark(lambda: compute_weights_easy(dop, params))
    assert ws.weights.shape[0] == params.n_easy_bins


def test_bench_weights_hard(benchmark, params, dop):
    ws = benchmark(lambda: compute_weights_hard(dop, params))
    assert ws.weights.shape[0] == params.n_hard_bins


def test_bench_beamform_easy(benchmark, params, dop):
    ws = compute_weights_easy(dop, params)
    y = benchmark(lambda: beamform(dop.easy, ws))
    assert y.shape == (params.n_easy_bins, params.n_beams, params.n_ranges)


def test_bench_pulse_compression(benchmark, params):
    rng = np.random.default_rng(0)
    beams = (
        rng.standard_normal((params.n_doppler_bins, params.n_beams, params.n_ranges))
        .astype(np.complex64)
    )
    y = benchmark(lambda: pulse_compress(beams, params.pulse_len))
    assert y.shape == beams.shape


def test_bench_cfar(benchmark, params):
    rng = np.random.default_rng(1)
    beams = (
        (rng.standard_normal((params.n_doppler_bins, params.n_beams, params.n_ranges))
         + 1j * rng.standard_normal((params.n_doppler_bins, params.n_beams, params.n_ranges)))
        .astype(np.complex64)
    )
    dets = benchmark(
        lambda: ca_cfar(
            beams,
            list(range(params.n_doppler_bins)),
            params.cfar_window,
            params.cfar_guard,
            params.pfa,
        )
    )
    assert isinstance(dets, list)


def test_bench_full_chain(benchmark, params, cube, dop):
    res = benchmark(lambda: stap_chain(cube, params, prev_doppler=dop))
    assert res.beams.shape[0] == params.n_doppler_bins
