"""Benchmark: Figure 6 — bar charts of the separate-I/O-task results."""

from benchmarks.conftest import BENCH_CFG, cached
from repro.bench.experiments import run_table2


def test_fig6_separate_charts(benchmark, emit, sweep_cache):
    table2 = cached(sweep_cache, "t2", lambda: run_table2(cfg=BENCH_CFG))
    chart = benchmark.pedantic(table2.render_charts, rounds=1, iterations=1)
    emit("fig6_separate_charts", chart)
    assert "throughput" in chart and "latency" in chart
