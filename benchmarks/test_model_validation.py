"""Validation: the analytic model (Eqs. 1-4) vs the simulation.

The paper derives its conclusions from the throughput/latency equations;
this bench quantifies how well the first-order analytic model
(:class:`repro.core.model.PipelineModel`) predicts the measured values
across the evaluation grid — the check a designer would run before
trusting the equations for capacity planning.
"""

from benchmarks.conftest import BENCH_CFG
from repro.bench.cases import paper_cases
from repro.core.executor import PipelineExecutor
from repro.core.model import IOModel, PipelineModel
from repro.core.pipeline import build_embedded_pipeline
from repro.stap.params import STAPParams
from repro.trace.report import format_table

PARAMS = STAPParams()


def _run_grid():
    rows = []
    for case in paper_cases(PARAMS):
        spec = build_embedded_pipeline(case.assignment)
        io = IOModel(
            stripe_factor=case.fs.stripe_factor,
            stripe_unit=case.fs.stripe_unit,
            disk_bw=case.preset.disk_bw,
            disk_overhead=case.preset.disk_overhead,
            asynchronous=(case.fs.kind == "pfs"),
        )
        model = PipelineModel(spec, PARAMS, case.preset, io)
        measured = PipelineExecutor(spec, PARAMS, case.preset, case.fs, BENCH_CFG).run()
        rows.append(
            (case.label, model.predicted_throughput(), measured.throughput,
             model.predicted_latency(), measured.latency)
        )
    return rows


def test_model_validation(benchmark, emit):
    rows = benchmark.pedantic(_run_grid, rounds=1, iterations=1)
    table = [
        [label, pt, mt, pt / mt, pl, ml, pl / ml]
        for label, pt, mt, pl, ml in rows
    ]
    emit(
        "model_validation",
        format_table(
            ["configuration", "thr model", "thr meas", "ratio",
             "lat model", "lat meas", "ratio"],
            table,
            title="Analytic model (Eqs. 1-4 + IOModel) vs simulation",
            float_fmt="{:.3f}",
        ),
    )
    # The first-order model tracks the simulation within 2x everywhere
    # and within 40% for throughput (good enough for design decisions,
    # which is all the paper asks of it).
    for label, pt, mt, pl, ml in rows:
        assert 0.6 < pt / mt < 1.67, (label, pt, mt)
        assert 0.5 < pl / ml < 2.0, (label, pl, ml)
