"""Validation: the analytic model (Eqs. 1-4) vs the simulation.

The paper derives its conclusions from the throughput/latency equations;
this bench quantifies how well the first-order analytic model
(:class:`repro.core.model.PipelineModel`) predicts the measured values
across the evaluation grid — the check a designer would run before
trusting the equations for capacity planning.

The model here is built by :func:`repro.bench.surrogate.model_for_spec`,
the same constructor the surrogate screen uses, so the committed
``results/model_validation.txt`` artifact documents exactly the raw
(uncalibrated) error the screen's bias correction starts from: the
``rel err`` columns are per-case relative errors ``|model - sim| / sim``
for throughput and latency.
"""

from benchmarks.conftest import BENCH_CFG
from repro.bench.cases import paper_cases
from repro.bench.engine import ExperimentSpec
from repro.bench.surrogate import model_for_spec
from repro.core.executor import PipelineExecutor
from repro.stap.params import STAPParams
from repro.trace.report import format_table

PARAMS = STAPParams()


def _run_grid():
    rows = []
    for case in paper_cases(PARAMS):
        spec = ExperimentSpec.for_case("embedded", case, cfg=BENCH_CFG)
        model = model_for_spec(spec)
        measured = PipelineExecutor(
            model.spec, PARAMS, case.preset, case.fs, BENCH_CFG
        ).run()
        rows.append(
            (case.label, model.predicted_throughput(), measured.throughput,
             model.predicted_latency(), measured.latency)
        )
    return rows


def test_model_validation(benchmark, emit):
    rows = benchmark.pedantic(_run_grid, rounds=1, iterations=1)
    table = [
        [label, pt, mt, abs(pt - mt) / mt, pl, ml, abs(pl - ml) / ml]
        for label, pt, mt, pl, ml in rows
    ]
    err_tp = [abs(pt - mt) / mt for _, pt, mt, _, _ in rows]
    err_lat = [abs(pl - ml) / ml for _, _, _, pl, ml in rows]
    footer = (
        f"\nrelative error |model - sim| / sim over {len(rows)} cases:"
        f"\n  throughput: mean {sum(err_tp) / len(err_tp):.3f},"
        f" worst {max(err_tp):.3f}"
        f"\n  latency   : mean {sum(err_lat) / len(err_lat):.3f},"
        f" worst {max(err_lat):.3f}"
        "\n(raw first-order error — the surrogate screen's per-group bias"
        "\n calibration divides this out before bounding residuals; see"
        "\n docs/surrogate.md)"
    )
    emit(
        "model_validation",
        format_table(
            ["configuration", "thr model", "thr meas", "rel err",
             "lat model", "lat meas", "rel err"],
            table,
            title="Analytic model (Eqs. 1-4 + IOModel) vs simulation",
            float_fmt="{:.3f}",
        ) + footer,
    )
    # The first-order model tracks the simulation within 2x everywhere
    # and within 40% for throughput (good enough for design decisions,
    # which is all the paper asks of it).
    for label, pt, mt, pl, ml in rows:
        assert 0.6 < pt / mt < 1.67, (label, pt, mt)
        assert 0.5 < pl / ml < 2.0, (label, pl, ml)
