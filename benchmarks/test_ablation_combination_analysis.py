"""Ablation: §6.2's both-improve case, constructed concretely.

The paper only *analyses* the situation where a to-be-combined task is
the pipeline bottleneck (Eq. 15): combining should then improve both
throughput and latency.  This bench builds that situation (pulse
compression starved to one node) and measures it.
"""

from repro.bench.experiments import run_ablation_combination_analysis
from repro.trace.report import format_table


def test_ablation_combination_analysis(benchmark, emit):
    out = benchmark.pedantic(
        run_ablation_combination_analysis, rounds=1, iterations=1
    )
    r7, r6 = out["bottlenecked"], out["combined"]
    rows = [
        ["7 tasks (PC starved)", r7.throughput, r7.latency],
        ["6 tasks (combined)", r6.throughput, r6.latency],
    ]
    emit(
        "ablation_combination_analysis",
        format_table(
            ["pipeline", "throughput", "latency (s)"],
            rows,
            title="Eq. 15: combining a bottleneck task improves BOTH metrics",
        )
        + f"\nthroughput gain {out['throughput_gain']:.2f}x, "
        + f"latency gain {out['latency_gain']:.2f}x",
    )
    assert out["throughput_gain"] > 1.2
    assert out["latency_gain"] > 1.2
    assert out["analysis"].latency_improves()
