"""Ablation: radar writer contending with pipeline reads.

The paper's setup stages radar writes "at times that are different from
the times at which the [pipeline] reads" to minimise interference.  This
bench quantifies the interference when a live writer streams future
CPIs into the same stripe directories while the pipeline runs, at the
bottleneck-prone configuration (case 3, stripe factor 16).
"""

from benchmarks.conftest import BENCH_CFG
from repro.bench.experiments import run_ablation_writer_interference
from repro.trace.report import format_table


def test_ablation_writer_interference(benchmark, emit):
    out = benchmark.pedantic(
        lambda: run_ablation_writer_interference(
            case_number=3, stripe_factor=16, cfg=BENCH_CFG
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [label, r.throughput, r.latency,
         r.measurement.task_stats["doppler"].recv]
        for label, r in out.items()
    ]
    emit(
        "ablation_writer_interference",
        format_table(
            ["configuration", "throughput", "latency (s)", "doppler recv (s)"],
            rows,
            title="Read/write interference at case 3, PFS sf=16",
        ),
    )
    # Writer traffic queues on the same disks: reads cannot get faster.
    assert out["with_writer"].throughput <= out["quiet"].throughput * 1.02
