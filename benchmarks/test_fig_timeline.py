"""Artifact: the pipeline in action — an ASCII Gantt timeline.

Not a figure from the paper, but the picture its §2 describes: every
task node's receive/compute/send phases over a short run, showing the
software pipeline filling and reaching steady state, the weight tasks
running one CPI behind, and the embedded reads hiding under compute.
Also exports the same run as Chrome-tracing JSON for interactive
inspection (open ``results/timeline_case1.json`` in
https://ui.perfetto.dev).
"""

import json

from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineExecutor
from repro.core.pipeline import NodeAssignment, build_embedded_pipeline
from repro.machine.presets import paragon
from repro.stap.params import STAPParams
from repro.trace.export import write_chrome_trace
from repro.trace.gantt import render_gantt


def test_fig_timeline(benchmark, emit, results_dir):
    params = STAPParams()
    spec = build_embedded_pipeline(NodeAssignment.case(1, params))
    result = benchmark.pedantic(
        lambda: PipelineExecutor(
            spec, params, paragon(), FSConfig("pfs", 64),
            ExecutionConfig(n_cpis=4, warmup=1),
        ).run(),
        rounds=1,
        iterations=1,
    )
    gantt = render_gantt(result.trace, width=110)
    emit(
        "fig_timeline_case1",
        "Pipeline timeline, case 1 (25 nodes), PFS sf=64, 4 CPIs\n"
        "(r=receive, C=compute, s=send, .=flow-control stall)\n\n" + gantt,
    )
    trace_path = write_chrome_trace(
        result.trace, str(results_dir / "timeline_case1.json")
    )
    with open(trace_path, encoding="utf-8") as fh:
        assert len(json.load(fh)) > 200
    # The timeline must show every task computing ('C') at least once.
    for task in spec.task_names():
        assert any(
            line.startswith(f"{task[:14]:>14}[") and "C" in line
            for line in gantt.splitlines()
        ), task
