"""Tests for the synthetic radar scene generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stap.scenario import (
    Jammer,
    Scenario,
    Target,
    make_cube,
    spatial_steering,
    temporal_steering,
)


class TestSteering:
    def test_spatial_unit_modulus(self):
        a = spatial_steering(0.3, 8)
        assert np.allclose(np.abs(a), 1.0)
        assert a[0] == 1.0 + 0j

    def test_spatial_broadside_is_ones(self):
        assert np.allclose(spatial_steering(0.0, 8), 1.0)

    def test_temporal_frequency(self):
        b = temporal_steering(0.25, 8)
        # Quarter-cycle advance per pulse: period 4.
        assert np.allclose(b[4], b[0])
        assert np.allclose(b[1], 1j, atol=1e-6)

    def test_dtype(self):
        assert spatial_steering(0.1, 4).dtype == np.complex64
        assert temporal_steering(0.1, 4).dtype == np.complex64


class TestMakeCube:
    def test_deterministic(self, tiny_params):
        sc = Scenario.standard(tiny_params)
        c1 = make_cube(tiny_params, sc, 2)
        c2 = make_cube(tiny_params, sc, 2)
        assert np.array_equal(c1.data, c2.data)

    def test_cpis_differ(self, tiny_params):
        sc = Scenario.standard(tiny_params)
        c1 = make_cube(tiny_params, sc, 0)
        c2 = make_cube(tiny_params, sc, 1)
        assert not np.array_equal(c1.data, c2.data)

    def test_dtype_matches_params(self, tiny_params):
        sc = Scenario.standard(tiny_params)
        assert make_cube(tiny_params, sc, 0).data.dtype == tiny_params.dtype

    def test_noise_only_power_is_unit(self, tiny_params):
        sc = Scenario(targets=(), jammers=(), cnr_db=float("-inf"))
        c = make_cube(tiny_params, sc, 0)
        power = np.mean(np.abs(c.data) ** 2)
        assert power == pytest.approx(1.0, rel=0.05)

    def test_cnr_sets_clutter_power(self, tiny_params):
        sc = Scenario(targets=(), jammers=(), cnr_db=20.0)
        c = make_cube(tiny_params, sc, 0)
        power = np.mean(np.abs(c.data) ** 2)
        # noise (1) + clutter (100)
        assert power == pytest.approx(101.0, rel=0.15)

    def test_jammer_power(self, tiny_params):
        sc = Scenario(targets=(), jammers=(Jammer(0.5, jnr_db=20.0),), cnr_db=float("-inf"))
        c = make_cube(tiny_params, sc, 0)
        power = np.mean(np.abs(c.data) ** 2)
        assert power == pytest.approx(101.0, rel=0.15)

    def test_jammer_is_directional(self, tiny_params):
        sc = Scenario(targets=(), jammers=(Jammer(0.5, jnr_db=30.0),), cnr_db=float("-inf"))
        c = make_cube(tiny_params, sc, 0)
        a = spatial_steering(0.5, tiny_params.n_channels)
        # Beamforming toward the jammer collects coherent power ~ J * JNR;
        # the channel-space covariance must be rank-1 dominated.
        snap = c.data.reshape(tiny_params.n_channels, -1)
        R = snap @ snap.conj().T / snap.shape[1]
        toward = np.real(a.conj() @ R @ a) / tiny_params.n_channels
        away = np.real(
            spatial_steering(-0.5, tiny_params.n_channels).conj()
            @ R
            @ spatial_steering(-0.5, tiny_params.n_channels)
        ) / tiny_params.n_channels
        assert toward > 50 * away

    def test_target_out_of_range_rejected(self, tiny_params):
        sc = Scenario(targets=(Target(10**6, 0.1, 0.0),))
        with pytest.raises(ConfigurationError):
            make_cube(tiny_params, sc, 0)

    def test_target_near_edge_truncates(self, tiny_params):
        sc = Scenario(
            targets=(Target(tiny_params.n_ranges - 2, 0.1, 0.0, snr_db=20.0),),
            jammers=(),
            cnr_db=float("-inf"),
        )
        c = make_cube(tiny_params, sc, 0)  # must not raise
        assert c.n_ranges == tiny_params.n_ranges

    def test_zero_patches_rejected(self, tiny_params):
        sc = Scenario(n_clutter_patches=0)
        with pytest.raises(ConfigurationError):
            make_cube(tiny_params, sc, 0)

    def test_standard_scenario_has_easy_and_hard_target(self, tiny_params):
        sc = Scenario.standard(tiny_params)
        bins = [
            round(t.doppler * tiny_params.n_pulses) % tiny_params.n_pulses
            for t in sc.targets
        ]
        hard = set(tiny_params.hard_bins)
        assert any(b in hard for b in bins)
        assert any(b not in hard for b in bins)

    def test_clutter_covariance_stationary_across_cpis(self, tiny_params):
        sc = Scenario(targets=(), jammers=(), cnr_db=30.0, seed=5)
        covs = []
        for k in range(2):
            c = make_cube(tiny_params, sc, k).data
            snap = c.reshape(tiny_params.n_channels, -1)
            covs.append(snap @ snap.conj().T / snap.shape[1])
        # Same patch geometry, fresh amplitudes: covariances agree closely.
        rel = np.linalg.norm(covs[0] - covs[1]) / np.linalg.norm(covs[0])
        assert rel < 0.2
