"""Tests for stage-structured execution and the threaded (SMP) runner."""

import pytest

from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineExecutor
from repro.core.pipeline import (
    NodeAssignment,
    build_embedded_pipeline,
    build_separate_io_pipeline,
    combine_pulse_cfar,
)
from repro.core.stages import BoundedQueue
from repro.machine.presets import ibm_sp, paragon
from repro.stap.chain import run_cpi_stream
from repro.stap.scenario import Scenario, make_cube


class _FakeCtx:
    def __init__(self, kernel):
        self.kernel = kernel


class TestBoundedQueue:
    def test_put_get_roundtrip(self, kernel):
        q = BoundedQueue(_FakeCtx(kernel), depth=2)
        out = []

        def producer():
            for i in range(5):
                yield from q.put(i)

        def consumer():
            for _ in range(5):
                v = yield from q.get()
                out.append(v)

        kernel.process(producer())
        kernel.process(consumer())
        kernel.run()
        assert out == [0, 1, 2, 3, 4]

    def test_put_blocks_at_depth(self, kernel):
        q = BoundedQueue(_FakeCtx(kernel), depth=1)
        progress = []

        def producer():
            yield from q.put("a")
            progress.append(("put-a", kernel.now))
            yield from q.put("b")  # blocks until consumer takes "a"
            progress.append(("put-b", kernel.now))

        def consumer():
            yield kernel.timeout(5.0)
            yield from q.get()
            yield from q.get()

        kernel.process(producer())
        kernel.process(consumer())
        kernel.run()
        assert progress[0] == ("put-a", 0.0)
        assert progress[1][1] == 5.0  # second put waited for the drain

    def test_get_blocks_until_put(self, kernel):
        q = BoundedQueue(_FakeCtx(kernel), depth=1)
        got = []

        def consumer():
            v = yield from q.get()
            got.append((v, kernel.now))

        def producer():
            yield kernel.timeout(2.0)
            yield from q.put("late")

        kernel.process(consumer())
        kernel.process(producer())
        kernel.run()
        assert got == [("late", 2.0)]


@pytest.fixture
def assignment(small_params):
    return NodeAssignment.balanced(small_params, 20, io_nodes=4)


def run(spec, params, threaded, preset=None, fs=None, compute=False, scenario=None, n_cpis=5):
    return PipelineExecutor(
        spec,
        params,
        preset or paragon(),
        fs or FSConfig("pfs", stripe_factor=8),
        ExecutionConfig(n_cpis=n_cpis, warmup=1, compute=compute, threaded=threaded),
        scenario=scenario,
    ).run()


class TestThreadedExecution:
    def test_threaded_runs_all_pipelines(self, small_params, assignment):
        for builder in (
            build_embedded_pipeline,
            build_separate_io_pipeline,
            lambda a: combine_pulse_cfar(build_embedded_pipeline(a)),
        ):
            res = run(builder(assignment), small_params, threaded=True)
            assert res.throughput > 0 and res.latency > 0

    def test_threaded_deterministic(self, small_params, assignment):
        spec = build_embedded_pipeline(assignment)
        r1 = run(spec, small_params, threaded=True)
        r2 = run(spec, small_params, threaded=True)
        assert r1.throughput == r2.throughput and r1.latency == r2.latency

    def test_threaded_throughput_not_worse(self, small_params, assignment):
        """Overlapping phases can only shorten the cycle (Eq. 1's max)."""
        spec = build_embedded_pipeline(assignment)
        seq = run(spec, small_params, threaded=False, n_cpis=8)
        thr = run(spec, small_params, threaded=True, n_cpis=8)
        assert thr.throughput >= 0.99 * seq.throughput

    def test_threaded_matches_serial_chain_numerics(self, small_params, assignment):
        """Phase threading must not change a single detection."""
        scenario = Scenario.standard(small_params, seed=7)
        n_cpis = 4
        cubes = [make_cube(small_params, scenario, k) for k in range(n_cpis)]
        serial = sorted(
            d for r in run_cpi_stream(cubes, small_params) for d in r.detections
        )
        res = run(
            build_embedded_pipeline(assignment),
            small_params,
            threaded=True,
            compute=True,
            scenario=scenario,
            n_cpis=n_cpis,
        )
        got = [(d.cpi_index, d.doppler_bin, d.beam, d.range_gate) for d in sorted(res.detections)]
        want = [(d.cpi_index, d.doppler_bin, d.beam, d.range_gate) for d in serial]
        assert got == want

    def test_threading_hides_synchronous_reads(self):
        """The IPPS'99 motivation: on PIOFS (no async API), a receive
        thread recovers the I/O-compute overlap in software."""
        from repro.stap.params import STAPParams

        params = STAPParams()
        spec = build_embedded_pipeline(NodeAssignment.case(1, params))
        seq = run(spec, params, threaded=False, preset=ibm_sp(),
                  fs=FSConfig("piofs", 80), n_cpis=8)
        thr = run(spec, params, threaded=True, preset=ibm_sp(),
                  fs=FSConfig("piofs", 80), n_cpis=8)
        assert thr.throughput > 1.3 * seq.throughput

    def test_threading_cannot_beat_saturated_disks(self):
        """Once the stripe directories are the bottleneck, no amount of
        node-local overlap helps."""
        from repro.stap.params import STAPParams

        params = STAPParams()
        spec = build_embedded_pipeline(NodeAssignment.case(3, params))
        seq = run(spec, params, threaded=False, fs=FSConfig("pfs", 16), n_cpis=8)
        thr = run(spec, params, threaded=True, fs=FSConfig("pfs", 16), n_cpis=8)
        assert thr.throughput == pytest.approx(seq.throughput, rel=0.02)

    def test_threaded_latency_pays_queueing(self, small_params, assignment):
        """Per-CPI latency is not improved by intra-node pipelining —
        each datum still traverses every phase, plus queue handoffs."""
        spec = build_embedded_pipeline(assignment)
        seq = run(spec, small_params, threaded=False, n_cpis=8)
        thr = run(spec, small_params, threaded=True, n_cpis=8)
        assert thr.latency >= 0.95 * seq.latency
