"""Unit tests for repro.sim.events."""

import pytest

from repro.errors import SimulationError


class TestEvent:
    def test_starts_pending(self, kernel):
        ev = kernel.event()
        assert not ev.triggered

    def test_value_before_trigger_raises(self, kernel):
        with pytest.raises(SimulationError):
            kernel.event().value

    def test_succeed_sets_value(self, kernel):
        ev = kernel.event()
        ev.succeed(42)
        assert ev.triggered and ev.ok and ev.value == 42

    def test_succeed_with_none_still_triggered(self, kernel):
        ev = kernel.event()
        ev.succeed()
        assert ev.triggered and ev.value is None

    def test_double_succeed_raises(self, kernel):
        ev = kernel.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_then_succeed_raises(self, kernel):
        ev = kernel.event()
        ev.fail(ValueError("x"))
        with pytest.raises(SimulationError):
            ev.succeed(1)

    def test_fail_requires_exception(self, kernel):
        ev = kernel.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_fail_sets_not_ok(self, kernel):
        ev = kernel.event()
        ev.fail(RuntimeError("boom"))
        assert ev.triggered and not ev.ok
        assert isinstance(ev.value, RuntimeError)

    def test_callbacks_run_on_fire(self, kernel):
        ev = kernel.event()
        got = []
        ev.callbacks.append(lambda e: got.append(e.value))
        ev.succeed("payload")
        kernel.run()
        assert got == ["payload"]

    def test_callbacks_fire_in_registration_order(self, kernel):
        ev = kernel.event()
        order = []
        ev.callbacks.append(lambda e: order.append(1))
        ev.callbacks.append(lambda e: order.append(2))
        ev.succeed()
        kernel.run()
        assert order == [1, 2]


class TestLateCallbackAppend:
    """A callback appended after an event fires must fail loudly.

    Historically such appends were silently dropped (the fired event's
    callback list had already been consumed), which turned races between
    triggering and waiting into undebuggable hangs.  The callbacks
    attribute is now sealed at trigger time.
    """

    def test_append_after_succeed_raises(self, kernel):
        ev = kernel.event()
        ev.succeed(1)
        with pytest.raises(SimulationError, match="already-fired"):
            ev.callbacks.append(lambda e: None)

    def test_append_after_fail_raises(self, kernel):
        ev = kernel.event()
        ev.fail(RuntimeError("boom"))
        with pytest.raises(SimulationError, match="already-fired"):
            ev.callbacks.append(lambda e: None)

    def test_append_after_timeout_fires_raises(self, kernel):
        t = kernel.timeout(1.0)
        kernel.run()
        with pytest.raises(SimulationError, match="already-fired"):
            t.callbacks.append(lambda e: None)

    def test_append_to_uncontended_grant_raises(self, kernel):
        from repro.sim.resources import Resource

        res = Resource(kernel, capacity=1)

        def holder(k):
            req = res.request()  # born-fired grant, sealed
            yield req
            with pytest.raises(SimulationError, match="already-fired"):
                req.callbacks.append(lambda e: None)
            res.release()

        kernel.process(holder(kernel))
        kernel.run()

    def test_sealed_callbacks_report_empty(self, kernel):
        # interrupt() probes ``cb in waiting.callbacks`` on the waited
        # event; a fired event must report no members rather than raise.
        ev = kernel.event()
        ev.succeed()
        assert len(ev.callbacks) == 0
        assert (lambda e: None) not in ev.callbacks
        assert list(ev.callbacks) == []


class TestTimeout:
    def test_negative_delay_raises(self, kernel):
        with pytest.raises(SimulationError):
            kernel.timeout(-1.0)

    def test_zero_delay_fires_at_current_time(self, kernel):
        t = kernel.timeout(0.0)
        kernel.run()
        assert t.triggered and kernel.now == 0.0

    def test_fires_after_delay(self, kernel):
        t = kernel.timeout(2.5)
        assert not t.triggered
        kernel.run()
        assert t.triggered and kernel.now == 2.5

    def test_carries_value(self, kernel):
        t = kernel.timeout(1.0, value="done")
        kernel.run()
        assert t.value == "done"

    def test_is_pending_until_clock_reaches_it(self, kernel):
        t = kernel.timeout(5.0)
        kernel.run(until=3.0)
        assert not t.triggered
        kernel.run()
        assert t.triggered


class TestAllOf:
    def test_empty_fires_immediately(self, kernel):
        cond = kernel.all_of([])
        assert cond.triggered and cond.value == []

    def test_waits_for_all(self, kernel):
        a, b = kernel.timeout(1.0, "a"), kernel.timeout(2.0, "b")
        cond = kernel.all_of([a, b])
        kernel.run(until=1.5)
        assert not cond.triggered
        kernel.run()
        assert cond.triggered and cond.value == ["a", "b"]

    def test_value_order_matches_input_order(self, kernel):
        late = kernel.timeout(3.0, "late")
        early = kernel.timeout(1.0, "early")
        cond = kernel.all_of([late, early])
        kernel.run()
        assert cond.value == ["late", "early"]

    def test_already_triggered_children(self, kernel):
        a = kernel.event()
        a.succeed("x")
        cond = kernel.all_of([a, kernel.timeout(1.0, "y")])
        kernel.run()
        assert cond.value == ["x", "y"]

    def test_child_failure_fails_condition(self, kernel):
        a = kernel.event()
        b = kernel.timeout(5.0)
        cond = kernel.all_of([a, b])
        a.fail(ValueError("bad"))
        kernel.run(until=1.0)
        assert cond.triggered and not cond.ok


class TestAnyOf:
    def test_first_wins(self, kernel):
        a, b = kernel.timeout(2.0, "slow"), kernel.timeout(1.0, "fast")
        cond = kernel.any_of([a, b])
        kernel.run()
        ev, val = cond.value
        assert ev is b and val == "fast"

    def test_fires_at_first_event_time(self, kernel):
        cond = kernel.any_of([kernel.timeout(2.0), kernel.timeout(0.5)])
        got = []
        cond.callbacks.append(lambda e: got.append(kernel.now))
        kernel.run()
        assert got == [0.5]

    def test_late_events_do_not_retrigger(self, kernel):
        a, b = kernel.timeout(1.0, "a"), kernel.timeout(2.0, "b")
        cond = kernel.any_of([a, b])
        kernel.run()
        assert cond.value[1] == "a"  # unchanged after b fires
