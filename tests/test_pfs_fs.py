"""Integration tests for the PFS / PIOFS file systems on a machine."""

import numpy as np
import pytest

from repro.errors import (
    AsyncUnsupportedError,
    ConfigurationError,
    FileExistsInFSError,
    FileNotOpenError,
    NoSuchFileError,
)
from repro.machine.presets import generic_cluster, paragon
from repro.mpi.datatypes import Phantom
from repro.pfs import PFS, PIOFS, DiskSpec, OpenMode
from repro.sim.kernel import Kernel


def make_fs(cls=PFS, sf=4, n_compute=4, unit=1024, disk=None, preset=None):
    k = Kernel()
    m = (preset or generic_cluster()).build(k, n_compute=n_compute, n_io=sf)
    fs = cls(m, stripe_unit=unit, stripe_factor=sf, disk=disk or DiskSpec(50e6, 1e-3))
    return k, fs


def run(k, gen):
    out = {}

    def wrapper():
        out["value"] = yield from gen
    k.process(wrapper())
    k.run()
    return out.get("value")


class TestNamespace:
    def test_create_and_exists(self):
        _, fs = make_fs()
        fs.create("a", data=b"xyz")
        assert fs.exists("a") and fs.file_size("a") == 3

    def test_exclusive_create(self):
        _, fs = make_fs()
        fs.create("a")
        with pytest.raises(FileExistsInFSError):
            fs.create("a")
        fs.create("a", exist_ok=True)  # fine

    def test_open_missing_raises(self):
        _, fs = make_fs()
        with pytest.raises(NoSuchFileError):
            fs.open("ghost", 0)

    def test_open_bad_node(self):
        _, fs = make_fs()
        fs.create("a")
        with pytest.raises(ConfigurationError):
            fs.open("a", node_id=99)

    def test_gopen_gives_every_node_a_handle(self):
        _, fs = make_fs()
        fs.create("a")
        handles = fs.gopen("a", [0, 1, 2])
        assert len(handles) == 3
        assert all(h.mode is OpenMode.M_ASYNC for h in handles)

    def test_closed_handle_rejected(self):
        k, fs = make_fs()
        fs.create("a", data=b"abc")
        h = fs.open("a", 0)
        h.close()
        with pytest.raises(FileNotOpenError):
            run(k, fs.read(h, 0, 1))

    def test_requires_io_nodes(self):
        k = Kernel()
        m = generic_cluster().build(k, n_compute=2, n_io=0)
        with pytest.raises(ConfigurationError):
            PFS(m, 1024, 4, DiskSpec(1e6, 1e-3))


class TestReadWrite:
    def test_roundtrip_bytes(self):
        k, fs = make_fs()
        fs.create("f", data=b"0123456789" * 1000)
        h = fs.open("f", 0)
        out = run(k, fs.read(h, 5, 10))
        assert out == b"5678901234"

    def test_striped_write_then_read(self):
        k, fs = make_fs(sf=4, unit=64)
        fs.create("f")
        h = fs.open("f", 0)
        payload = bytes(range(256)) * 4
        run(k, fs.write(h, 0, payload))
        out = run(k, fs.read(h, 0, len(payload)))
        assert out == payload

    def test_numpy_write(self):
        k, fs = make_fs()
        fs.create("f")
        h = fs.open("f", 1)
        arr = np.arange(100, dtype=np.complex64)
        run(k, fs.write(h, 0, arr))
        out = run(k, fs.read(h, 0, arr.nbytes))
        assert np.array_equal(np.frombuffer(out, np.complex64), arr)

    def test_phantom_file_read(self):
        k, fs = make_fs()
        fs.create("p", phantom_size=10_000)
        h = fs.open("p", 0)
        out = run(k, fs.read(h, 0, 500))
        assert isinstance(out, Phantom) and out.nbytes == 500

    def test_read_takes_disk_time(self):
        disk = DiskSpec(bandwidth=1e6, overhead=0.01)
        k, fs = make_fs(sf=1, disk=disk)
        fs.create("p", phantom_size=10**6)
        h = fs.open("p", 0)
        run(k, fs.read(h, 0, 10**6))
        assert k.now >= 1.0  # at least the media time on one directory

    def test_striping_parallelises_media_time(self):
        times = {}
        for sf in (1, 8):
            disk = DiskSpec(bandwidth=1e6, overhead=0.0)
            k, fs = make_fs(sf=sf, unit=1024, disk=disk)
            fs.create("p", phantom_size=8 * 1024)
            h = fs.open("p", 0)
            run(k, fs.read(h, 0, 8 * 1024))
            times[sf] = k.now
        assert times[8] < times[1] / 4

    def test_concurrent_readers_queue_on_few_directories(self):
        def elapsed(sf, readers):
            disk = DiskSpec(bandwidth=1e6, overhead=0.0)
            k, fs = make_fs(sf=sf, n_compute=readers, unit=1024, disk=disk)
            fs.create("p", phantom_size=readers * 4096)
            done = []

            def body(nid):
                h = fs.open("p", nid)
                yield from fs.read(h, nid * 4096, 4096)
                done.append(k.now)

            for nid in range(readers):
                k.process(body(nid))
            k.run()
            return max(done)

        assert elapsed(sf=8, readers=8) < elapsed(sf=1, readers=8) / 3

    def test_m_unix_serialises_accesses(self):
        def elapsed(mode):
            disk = DiskSpec(bandwidth=1e6, overhead=0.0)
            k, fs = make_fs(sf=8, n_compute=4, unit=1024, disk=disk)
            fs.create("p", phantom_size=4 * 8192)
            done = []

            def body(nid):
                h = fs.open("p", nid, mode)
                yield from fs.read(h, nid * 8192, 8192)
                done.append(k.now)

            for nid in range(4):
                k.process(body(nid))
            k.run()
            return max(done)

        assert elapsed(OpenMode.M_ASYNC) < elapsed(OpenMode.M_UNIX)

    def test_bytes_served_accounting(self):
        k, fs = make_fs(sf=2, unit=128)
        fs.create("p", phantom_size=1024)
        h = fs.open("p", 0)
        run(k, fs.read(h, 0, 1024))
        assert fs.total_bytes_served() == 1024

    def test_negative_read_args_rejected(self):
        k, fs = make_fs()
        fs.create("f", data=b"abc")
        h = fs.open("f", 0)
        with pytest.raises(ConfigurationError):
            run(k, fs.read(h, -1, 2))


class TestAsync:
    def test_iread_returns_request_immediately(self):
        k, fs = make_fs()
        fs.create("p", phantom_size=4096)
        h = fs.open("p", 0)
        req = fs.iread(h, 0, 4096)
        assert not req.complete
        out = run(k, PFS.iowait(req))
        assert out.nbytes == 4096

    def test_iread_overlaps_with_other_work(self):
        disk = DiskSpec(bandwidth=1e6, overhead=0.0)
        k, fs = make_fs(sf=1, disk=disk)
        fs.create("p", phantom_size=10**6)
        h = fs.open("p", 0)
        log = {}

        def body():
            req = fs.iread(h, 0, 10**6)  # 1 s of disk time
            yield k.timeout(0.9)          # overlapped computation
            log["compute_done"] = k.now
            yield from req.wait()
            log["read_done"] = k.now

        k.process(body())
        k.run()
        assert log["compute_done"] == pytest.approx(0.9)
        # Disk time overlapped the compute: ~1.0 s (+ network shipping),
        # nowhere near the 1.9 s a sequential read-then-compute would take.
        assert 1.0 <= log["read_done"] < 1.1

    def test_iwrite(self):
        k, fs = make_fs()
        fs.create("f")
        h = fs.open("f", 0)
        req = fs.iwrite(h, 0, b"payload")
        run(k, PFS.iowait(req))
        assert fs.backing.read("f", 0, 7) == b"payload"

    def test_piofs_has_no_iread(self):
        _, fs = make_fs(cls=PIOFS)
        fs.create("p", phantom_size=100)
        h = fs.open("p", 0)
        with pytest.raises(AsyncUnsupportedError):
            fs.iread(h, 0, 10)
        with pytest.raises(AsyncUnsupportedError):
            fs.iwrite(h, 0, b"x")

    def test_piofs_sync_read_works(self):
        k, fs = make_fs(cls=PIOFS)
        fs.create("f", data=b"piofs-data")
        h = fs.open("f", 0)
        assert run(k, fs.read(h, 0, 10)) == b"piofs-data"

    def test_supports_async_flags(self):
        assert PFS.supports_async and not PIOFS.supports_async


class TestOnRealNetworks:
    def test_read_ships_over_mesh(self):
        k = Kernel()
        m = paragon().build(k, n_compute=2, n_io=2)
        fs = PFS(m, 1024, 2, DiskSpec(50e6, 1e-4))
        fs.create("p", phantom_size=64 * 1024)
        h = fs.open("p", 0)
        out = {}

        def body():
            out["v"] = yield from fs.read(h, 0, 64 * 1024)

        k.process(body())
        k.run()
        assert out["v"].nbytes == 64 * 1024
        assert k.now > 0
