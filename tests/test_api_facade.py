"""The repro.run facade: one call from kwargs/dict/spec to a result."""

from __future__ import annotations

import pytest

import repro
from repro.bench.engine import ExperimentSpec, run_spec
from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineResult
from repro.core.pipeline import NodeAssignment
from repro.errors import ConfigurationError


@pytest.fixture
def fast_kwargs(small_params):
    return dict(
        assignment=NodeAssignment.balanced(small_params, 14),
        params=small_params, n_cpis=3, warmup=1, stripe_factor=8,
    )


class TestRunFacade:
    def test_kwargs_form(self, fast_kwargs):
        result = repro.run(**fast_kwargs)
        assert isinstance(result, PipelineResult)
        assert result.throughput > 0

    def test_dict_form_equals_kwargs_form(self, fast_kwargs):
        assert (
            repro.run(dict(fast_kwargs)).to_dict()
            == repro.run(**fast_kwargs).to_dict()
        )

    def test_spec_form_equals_run_spec(self, small_params):
        spec = ExperimentSpec(
            assignment=NodeAssignment.balanced(small_params, 14),
            params=small_params,
            fs=FSConfig("pfs", stripe_factor=8),
            cfg=ExecutionConfig(n_cpis=3, warmup=1),
        )
        assert repro.run(spec).to_dict() == run_spec(spec).to_dict()

    def test_case_form(self):
        result = repro.run(case=1, n_cpis=2, warmup=0, stripe_factor=8)
        assert result.throughput > 0

    def test_metrics_interval_flows_through(self, fast_kwargs):
        result = repro.run(metrics_interval=0.25, **fast_kwargs)
        assert result.metrics is not None
        assert result.metrics["interval"] == 0.25

    def test_fs_string_with_geometry_kwargs(self, small_params):
        result = repro.run(
            assignment=NodeAssignment.balanced(small_params, 14),
            params=small_params, fs="pfs", stripe_factor=4,
            n_cpis=2, warmup=0,
        )
        assert result.fs_label == "PFS sf=4"

    def test_seed_overrides_ready_spec(self, small_params, tmp_path):
        from dataclasses import replace

        from repro.bench.store import ResultStore

        spec = ExperimentSpec(
            assignment=NodeAssignment.balanced(small_params, 14),
            params=small_params,
            fs=FSConfig("pfs", stripe_factor=8),
            cfg=ExecutionConfig(n_cpis=2, warmup=0),
            seed=0,
        )
        store = ResultStore(tmp_path / "cache")
        repro.run(spec, seed=7, store=store)
        # The cell was cached under the seed-7 spec, not the original.
        assert store.hashes() == [replace(spec, seed=7).spec_hash()]

    def test_store_caches(self, fast_kwargs, tmp_path):
        from repro.bench.store import ResultStore

        store = ResultStore(tmp_path / "cache")
        first = repro.run(store=store, **fast_kwargs)
        again = repro.run(store=str(tmp_path / "cache"), **fast_kwargs)
        assert again.to_dict() == first.to_dict()
        assert len(store.hashes()) == 1

    def test_exported_at_top_level(self):
        assert "run" in repro.__all__
        assert "MetricsRegistry" in repro.__all__
        assert repro.MetricsRegistry is not None


class TestFacadeErrors:
    def test_needs_case_or_assignment(self):
        with pytest.raises(ConfigurationError, match="assignment"):
            repro.run(n_cpis=2)

    def test_rejects_both_case_and_assignment(self, small_params):
        with pytest.raises(ConfigurationError, match="not both"):
            repro.run(
                case=1,
                assignment=NodeAssignment.balanced(small_params, 14),
                params=small_params,
            )

    def test_rejects_unknown_kwargs(self):
        with pytest.raises(ConfigurationError, match="unknown arguments"):
            repro.run(case=1, frobnicate=True)

    def test_rejects_spec_plus_kwargs(self, small_params):
        spec = ExperimentSpec(
            assignment=NodeAssignment.balanced(small_params, 14),
            params=small_params,
        )
        with pytest.raises(ConfigurationError, match="not both"):
            repro.run(spec, n_cpis=2)

    def test_rejects_wrong_positional_type(self):
        with pytest.raises(ConfigurationError, match="ExperimentSpec"):
            repro.run(42)
