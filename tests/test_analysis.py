"""Tests for the repro.analysis facade: the one artifact resolver
(load), the offline sweep analyzer (analyze_sweep), and the renderers
(text/JSON/HTML), including the golden analysis of the committed
``results/`` artifacts."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    ANALYSIS_SCHEMA,
    analyze_sweep,
    gantt,
    load,
    render,
    to_html_report,
    write_analysis_json,
    write_html_report,
)
from repro.bench.engine import ExperimentSpec, run_spec
from repro.bench.store import STORE_SCHEMA, ResultStore
from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig
from repro.core.pipeline import NodeAssignment
from repro.errors import AnalysisError
from repro.obs.report import bottleneck_profile, render_metrics_summary
from repro.scenario import ScenarioSpec, TenantSpec, run_scenario
from repro.stap.params import STAPParams
from repro.trace.export import (
    write_chrome_trace,
    write_metrics_json,
    write_result_json,
)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

NONCONTIG_STRATEGIES = {
    "embedded-io",
    "collective-two-phase",
    "data-sieving",
    "list-io",
    "server-directed",
}


def _params() -> STAPParams:
    return STAPParams(
        n_channels=8, n_pulses=32, n_ranges=256, n_beams=6, n_hard_bins=8,
        n_training=64, pulse_len=16, cfar_window=12, cfar_guard=3, pfa=1e-6,
    )


def _spec(pipeline: str = "embedded", metrics: bool = False,
          stripe_factor: int = 8) -> ExperimentSpec:
    params = _params()
    return ExperimentSpec(
        assignment=NodeAssignment.balanced(params, 14),
        pipeline=pipeline,
        fs=FSConfig("pfs", stripe_factor=stripe_factor),
        params=params,
        cfg=ExecutionConfig(
            n_cpis=2, warmup=1,
            metrics_interval=0.25 if metrics else None,
        ),
    )


@pytest.fixture(scope="module")
def metered():
    """(spec, result) of one metered embedded run."""
    spec = _spec(metrics=True)
    return spec, run_spec(spec)


@pytest.fixture(scope="module")
def unmetered():
    """(spec, result) of one un-metered separate-I/O run."""
    spec = _spec(pipeline="separate")
    return spec, run_spec(spec)


# -- load(): the one artifact resolver --------------------------------------
class TestLoad:
    def test_result_object(self, metered):
        _, result = metered
        loaded = load(result)
        assert loaded.kind == "pipeline"
        assert loaded.source == "simulated"
        assert loaded.has_metrics
        assert loaded.result is result

    def test_result_dict(self, metered):
        _, result = metered
        loaded = load(result.to_dict())
        assert loaded.kind == "pipeline"
        assert loaded.result.throughput == pytest.approx(result.throughput)
        assert loaded.origin == "<dict>"

    def test_envelope_file(self, metered, tmp_path):
        _, result = metered
        path = write_result_json(result, str(tmp_path / "r.json"))
        loaded = load(path)
        assert loaded.kind == "pipeline"
        assert loaded.result.latency == pytest.approx(result.latency)
        assert loaded.origin == path

    def test_metrics_file(self, metered, tmp_path):
        _, result = metered
        path = write_metrics_json(result, str(tmp_path / "m.metrics.json"))
        loaded = load(path)
        assert loaded.kind == "metrics"
        assert loaded.result is None
        assert "counters" in loaded.metrics

    def test_trace_file(self, metered, tmp_path):
        _, result = metered
        path = write_chrome_trace(result, str(tmp_path / "t.trace.json"))
        loaded = load(path)
        assert loaded.kind == "trace"
        assert loaded.trace_events

    def test_store_hash_prefix(self, metered, tmp_path):
        spec, result = metered
        store = ResultStore(tmp_path / "cache")
        store.put(spec, result)
        loaded = load(spec.spec_hash()[:10], store=store)
        assert loaded.kind == "pipeline"
        assert loaded.spec_hash == spec.spec_hash()
        assert loaded.spec == spec.to_dict()
        assert loaded.result.throughput == pytest.approx(result.throughput)

    def test_missing_hash(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        with pytest.raises(AnalysisError, match="neither an existing file"):
            load("deadbeef", store=store)

    def test_stale_store_entry_dict(self, metered):
        spec, result = metered
        payload = {
            "schema": STORE_SCHEMA - 1,
            "spec_hash": spec.spec_hash(),
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        with pytest.raises(AnalysisError, match="stale store entry"):
            load(payload)

    def test_stale_envelope(self, metered):
        _, result = metered
        envelope = {
            "schema": 99, "kind": "PipelineResult", "data": result.to_dict()
        }
        with pytest.raises(AnalysisError, match="stale result artifact"):
            load(envelope)

    def test_stale_file_in_store(self, metered, tmp_path):
        # A schema-drifted file physically present under a store hash
        # must resolve to an explicit error, not a silent miss.
        spec, result = metered
        store = ResultStore(tmp_path / "cache")
        store.put(spec, result)
        h = spec.spec_hash()
        payload = json.loads(store.path_for(h).read_text())
        payload["schema"] = STORE_SCHEMA - 1
        store.path_for(h).write_text(json.dumps(payload))
        with pytest.raises(AnalysisError, match="stale or corrupt"):
            load(h, store=store)

    def test_rejects_junk(self):
        with pytest.raises(AnalysisError):
            load(123)
        with pytest.raises(AnalysisError):
            load("zz-not-a-hash-or-file")
        with pytest.raises(AnalysisError, match="not a recognized artifact"):
            load({"foo": 1})

    def test_top_level_reexports(self):
        assert repro.load is load
        assert repro.analyze_sweep is analyze_sweep
        assert repro.render is render
        assert repro.analysis.ANALYSIS_SCHEMA == ANALYSIS_SCHEMA


# -- analyze_sweep over the committed artifacts (golden) --------------------
class TestGoldenResultsDir:
    @pytest.fixture(scope="class")
    def analysis(self):
        # Pure offline parsing: reproduces the PR 8 tables with zero
        # new simulations.
        return analyze_sweep([str(RESULTS_DIR)])

    def test_counts(self, analysis):
        assert analysis["schema"] == ANALYSIS_SCHEMA
        assert analysis["counts"]["cells"] == 0
        assert analysis["counts"]["text_artifacts"] > 10
        assert not analysis["sources"]["errors"]

    def _entry(self, analysis, origin, group):
        matches = [
            e for e in analysis["win_loss"]
            if e["origin"] == origin and e["group"] == group
        ]
        assert len(matches) == 1, (origin, group)
        return matches[0]

    def test_noncontiguous_pfs_sf16_winner(self, analysis):
        e = self._entry(analysis, "ablation_noncontiguous", "pfs sf=16")
        assert e["winners"] == ["server-directed"]
        assert not e["tie"]
        assert e["values"]["server-directed"] == pytest.approx(3.563)
        assert 0.04 < e["margin"] < 0.07  # +5.4% in the committed table

    def test_noncontiguous_pfs_sf64_plateau_tie(self, analysis):
        # Compute-bound plateau: all five strategies converge.
        e = self._entry(analysis, "ablation_noncontiguous", "pfs sf=64")
        assert e["tie"]
        assert set(e["winners"]) == NONCONTIG_STRATEGIES
        assert max(e["values"].values()) == pytest.approx(3.955)

    def test_noncontiguous_piofs_sf64_winner(self, analysis):
        e = self._entry(analysis, "ablation_noncontiguous", "piofs sf=64")
        assert e["winners"] == ["embedded-io"]
        assert 0.01 < e["margin"] < 0.03  # +1.6%

    def test_noncontiguous_pfs_sf4_winner(self, analysis):
        e = self._entry(analysis, "ablation_noncontiguous", "pfs sf=4")
        assert e["winners"] == ["list-io"]

    def test_bottleneck_migration_crossover(self, analysis):
        hits = [
            x for x in analysis["crossovers"]
            if x["artifact"] == "ablation_bottleneck_migration"
        ]
        assert len(hits) == 1
        assert hits[0]["at"] == "sf=64"
        assert hits[0]["axes"] == {"sf": 64.0}
        assert (hits[0]["from"], hits[0]["to"]) == ("disk", "compute")


# -- analyze_sweep over result cells ----------------------------------------
class TestAnalyzeCells:
    def test_store_join_and_win_loss(self, metered, unmetered, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(metered[0], metered[1])
        store.put(unmetered[0], unmetered[1])
        analysis = analyze_sweep(store)
        assert analysis["counts"]["cells"] == 2
        assert analysis["counts"]["simulated"] == 2
        # The two cells differ only in strategy -> one win/loss group.
        cell_groups = [
            e for e in analysis["win_loss"] if e["origin"] == "cells"
        ]
        assert len(cell_groups) == 1
        assert set(cell_groups[0]["values"]) == {"embedded", "separate"}
        assert cell_groups[0]["winners"]
        # The un-metered cell degrades, never aborts the join.
        assert analysis["counts"]["unmetered"] == 1
        assert any("unknown" in n for n in analysis["notes"])

    def test_metered_cell_has_bottleneck(self, metered, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(metered[0], metered[1])
        analysis = analyze_sweep(store)
        (cell,) = analysis["cells"]
        assert cell["profile"]["bottleneck"] in ("disk", "compute")
        assert cell["axes"]["strategy"] == "embedded"
        assert cell["axes"]["stripe_factor"] == 8

    def test_predicted_cell_degrades(self, metered):
        d = metered[1].to_dict()
        d.pop("metrics", None)
        d["source"] = "predicted"
        analysis = analyze_sweep([str(RESULTS_DIR), d])
        assert analysis["counts"]["predicted"] == 1
        (cell,) = analysis["cells"]
        assert cell["source"] == "predicted"
        assert cell["profile"]["bottleneck"] == "unknown"
        assert "source=predicted" in cell["profile"]["note"]

    def test_empty_join_raises(self, tmp_path):
        with pytest.raises(AnalysisError, match="nothing to analyze"):
            analyze_sweep([str(tmp_path)])

    def test_bad_source_collected_not_raised(self, tmp_path):
        analysis = analyze_sweep([str(RESULTS_DIR), "feedbeef"],
                                 cache_dir=tmp_path / "nocache")
        assert analysis["sources"]["errors"]

    def test_scenario_tenant_breakdown(self):
        params = _params()
        cfg = ExecutionConfig(n_cpis=2, warmup=1)
        spec = ScenarioSpec(
            tenants=(
                TenantSpec(assignment=NodeAssignment.balanced(params, 14),
                           pipeline="embedded-io", cfg=cfg),
                TenantSpec(assignment=NodeAssignment.balanced(params, 14),
                           pipeline="separate-io", cfg=cfg),
            ),
            fs=FSConfig("pfs", stripe_factor=8),
            params=params,
        )
        result = run_scenario(spec)
        analysis = analyze_sweep(result)
        assert analysis["counts"]["cells"] == 2
        tenants = analysis["tenants"]
        assert len(tenants) == 2
        assert {t["strategy"] for t in tenants} == {
            "embedded-io", "separate-io"
        }
        assert all(t["n_tenants"] == 2 for t in tenants)
        assert all(t["throughput"] > 0 for t in tenants)


# -- the satellite bugfix: degrade instead of raise -------------------------
class TestDegradedProfiles:
    def test_strict_default_still_raises(self, unmetered):
        with pytest.raises(ValueError, match="no metrics"):
            bottleneck_profile(unmetered[1])

    def test_strict_false_degrades(self, unmetered):
        profile = bottleneck_profile(unmetered[1], strict=False)
        assert profile["bottleneck"] == "unknown"
        assert profile["note"] == "no metrics recorded (source=simulated)"

    def test_predicted_source_in_note(self, metered):
        d = metered[1].to_dict()
        d.pop("metrics", None)
        d["source"] = "predicted"
        result = load(d).result
        profile = bottleneck_profile(result, strict=False)
        assert profile["note"] == "no metrics recorded (source=predicted)"

    def test_summary_header_survives_missing_t_end(self, metered):
        metrics = dict(metered[1].metrics)
        metrics.pop("t_end", None)
        text = render_metrics_summary(metrics)
        assert "no elapsed time recorded" in text


# -- rendering --------------------------------------------------------------
class TestRender:
    @pytest.fixture(scope="class")
    def analysis(self):
        return analyze_sweep([str(RESULTS_DIR)])

    def test_text(self, analysis):
        text = render(analysis)
        assert "strategy win/loss" in text
        assert "server-directed" in text
        assert "disk→compute crossovers" in text

    def test_json_roundtrip(self, analysis):
        parsed = json.loads(render(analysis, fmt="json"))
        assert parsed["schema"] == ANALYSIS_SCHEMA
        assert parsed["win_loss"]

    def test_html(self, analysis):
        page = render(analysis, fmt="html")
        assert page.startswith("<!doctype html>")
        assert "Strategy win/loss" in page
        assert "server-directed" in page
        assert 'class="tie"' in page  # the sf=64 plateau rows

    def test_unknown_format(self, analysis):
        with pytest.raises(AnalysisError, match="unknown render format"):
            render(analysis, fmt="csv")

    def test_wrong_schema_rejected(self):
        with pytest.raises(AnalysisError, match="schema"):
            render({"schema": 99, "counts": {}})
        with pytest.raises(AnalysisError):
            to_html_report({"not": "an analysis"})

    def test_write_exporters_atomic(self, analysis, tmp_path):
        jpath = write_analysis_json(analysis, str(tmp_path / "a.json"),
                                    pretty=True)
        assert json.loads(Path(jpath).read_text())["schema"] == 1
        hpath = write_html_report(analysis, str(tmp_path / "a.html"))
        assert Path(hpath).read_text() == to_html_report(analysis)
        # atomic writes leave no temp droppings behind
        assert not list(tmp_path.glob(".*tmp"))


# -- the gantt facade -------------------------------------------------------
class TestGantt:
    def test_pipeline_gantt(self, metered):
        chart = gantt(metered[1], width=60)
        assert isinstance(chart, str) and chart

    def test_gantt_from_rehydrated_dict(self, metered):
        chart = gantt(metered[1].to_dict(), width=60)
        assert isinstance(chart, str) and chart

    def test_gantt_rejects_metrics_only(self, metered, tmp_path):
        path = write_metrics_json(metered[1], str(tmp_path / "m.json"))
        with pytest.raises(AnalysisError):
            gantt(path)


# -- CLI surface ------------------------------------------------------------
class TestCLI:
    def test_analyze_text(self, capsys):
        from repro.cli import main

        assert main(["analyze", str(RESULTS_DIR)]) == 0
        out = capsys.readouterr().out
        assert "strategy win/loss" in out
        assert "server-directed" in out

    def test_analyze_html_out(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "report.html"
        assert main(["analyze", str(RESULTS_DIR), "--format", "html",
                     "--out", str(out_file)]) == 0
        assert "Strategy win/loss" in out_file.read_text()

    def test_analyze_nothing_is_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["analyze", str(tmp_path)]) == 2
        assert "nothing to analyze" in capsys.readouterr().err

    def test_render_queue_stats_shim_warns(self):
        from repro.cli import render_queue_stats

        qs = {
            "total_entries": 10, "lane_entries": 4, "calendar_entries": 6,
            "nbuckets": 8, "width": 0.5, "count": 2, "lane_ratio": 0.4,
            "advances": 3, "fallback_scans": 0, "resizes": 1,
            "occupancy_hist": [0, 2, 1, 0, 0, 0, 0, 0],
        }
        with pytest.warns(DeprecationWarning, match="repro.analysis"):
            out = render_queue_stats(qs)
        assert "calendar queue statistics" in out
