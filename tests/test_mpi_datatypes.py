"""Unit and property tests for payload size accounting."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpi.datatypes import Phantom, nbytes_of


class TestPhantom:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Phantom(-1)

    def test_meta_carried(self):
        p = Phantom(10, {"cpi": 3})
        assert p.meta["cpi"] == 3

    def test_split_conserves_bytes(self):
        p = Phantom(100)
        parts = p.split(7)
        assert sum(q.nbytes for q in parts) == 100

    def test_split_sizes_differ_by_at_most_one(self):
        parts = Phantom(100).split(7)
        sizes = [q.nbytes for q in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_split_invalid_parts(self):
        with pytest.raises(ValueError):
            Phantom(10).split(0)

    @given(st.integers(0, 10**9), st.integers(1, 64))
    def test_split_property(self, nbytes, parts):
        pieces = Phantom(nbytes).split(parts)
        assert len(pieces) == parts
        assert sum(q.nbytes for q in pieces) == nbytes
        sizes = [q.nbytes for q in pieces]
        assert max(sizes) - min(sizes) <= 1


class TestNbytesOf:
    def test_none_is_zero(self):
        assert nbytes_of(None) == 0

    def test_numpy_array(self):
        a = np.zeros((4, 8), dtype=np.complex64)
        assert nbytes_of(a) == 4 * 8 * 8

    def test_phantom(self):
        assert nbytes_of(Phantom(123)) == 123

    def test_bytes(self):
        assert nbytes_of(b"hello") == 5

    def test_bytearray_and_memoryview(self):
        assert nbytes_of(bytearray(9)) == 9
        assert nbytes_of(memoryview(b"abc")) == 3

    def test_scalars(self):
        assert nbytes_of(3) == 8
        assert nbytes_of(3.5) == 8
        assert nbytes_of(1 + 2j) == 8
        assert nbytes_of(True) == 8
        assert nbytes_of(np.float32(1.0)) == 8

    def test_string_utf8(self):
        assert nbytes_of("abc") == 3

    def test_nested_sequence(self):
        a = np.zeros(10, dtype=np.float64)
        assert nbytes_of([a, a]) == 160

    def test_mapping(self):
        assert nbytes_of({"k": np.zeros(2, np.float64)}) == 1 + 16

    def test_tuple_of_mixed(self):
        assert nbytes_of((Phantom(5), b"xy")) == 7

    def test_unknown_object_charged_flat(self):
        class Opaque:
            pass

        assert nbytes_of(Opaque()) == 64

    def test_object_with_nbytes_attr(self):
        class HasSize:
            nbytes = 77

        assert nbytes_of(HasSize()) == 77
