"""Tests for clairvoyant covariance analysis and SINR loss."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stap.analysis import (
    clairvoyant_covariance,
    filter_response,
    optimal_weights,
    output_sinr,
    sinr_loss_curve,
)
from repro.stap.doppler import bin_frequency, doppler_process, doppler_window
from repro.stap.params import STAPParams
from repro.stap.scenario import Jammer, Scenario, make_cube
from repro.stap.weights import steering_matrix_easy


@pytest.fixture
def params():
    return STAPParams(
        n_channels=4, n_pulses=16, n_ranges=256, n_beams=4, n_hard_bins=4,
        n_training=32, pulse_len=8, cfar_window=8, cfar_guard=2,
    )


@pytest.fixture
def scene():
    return Scenario(targets=(), jammers=(Jammer(0.6, 25.0),), cnr_db=25.0, seed=5)


class TestFilterResponse:
    def test_on_bin_tone_gets_full_gain(self, params):
        b = 3
        h = filter_response(params, b, bin_frequency(b, params.n_pulses))
        win = doppler_window(params.n_pulses - 1, params.window_kind)
        assert abs(h) == pytest.approx(float(np.sum(win)), rel=1e-6)

    def test_far_off_bin_is_suppressed(self, params):
        b = 3
        on = abs(filter_response(params, b, bin_frequency(b, params.n_pulses)))
        off = abs(
            filter_response(
                params, b, bin_frequency((b + 8) % 16, params.n_pulses)
            )
        )
        assert off < 0.05 * on

    def test_invalid_bin(self, params):
        with pytest.raises(ConfigurationError):
            filter_response(params, 99, 0.0)


class TestClairvoyantCovariance:
    def test_hermitian_psd(self, params, scene):
        for b, hard in [(params.easy_bins[3], False), (params.hard_bins[0], True)]:
            R = clairvoyant_covariance(params, scene, b, hard)
            assert np.allclose(R, R.conj().T, atol=1e-9)
            eig = np.linalg.eigvalsh(R)
            assert eig.min() > 0  # noise floor keeps it positive definite

    def test_noise_only_easy_is_scaled_identity(self, params):
        quiet = Scenario(targets=(), jammers=(), cnr_db=float("-inf"))
        R = clairvoyant_covariance(params, quiet, 5, hard=False)
        win = doppler_window(params.n_pulses - 1, params.window_kind)
        e0 = float(np.sum(win**2))
        assert np.allclose(R, e0 * np.eye(params.n_channels), atol=1e-9)

    def test_noise_only_hard_has_stagger_correlation(self, params):
        quiet = Scenario(targets=(), jammers=(), cnr_db=float("-inf"))
        b = params.hard_bins[1]
        R = clairvoyant_covariance(params, quiet, b, hard=True)
        J = params.n_channels
        # Off-diagonal block is c * I with |c| = sum win[n] win[n-1].
        win = doppler_window(params.n_pulses - 1, params.window_kind)
        overlap = float(np.sum(win[1:] * win[:-1]))
        block = R[:J, J:]
        # (1e-5: the reference overlap accumulates in float32 here.)
        assert np.allclose(np.abs(np.diag(block)), overlap, rtol=1e-5)
        assert np.allclose(block - np.diag(np.diag(block)), 0, atol=1e-9)

    @pytest.mark.parametrize("hard", [False, True])
    def test_matches_monte_carlo(self, params, scene, hard):
        """The generator's sample covariance converges to the analysis —
        the strongest consistency check in the STAP layer."""
        b = params.hard_bins[1] if hard else params.easy_bins[5]
        snaps = []
        for k in range(30):
            dop = doppler_process(make_cube(params, scene, k), params)
            if hard:
                X = dop.hard[dop.hard_bins.index(b)]
            else:
                X = dop.easy[dop.easy_bins.index(b)]
            snaps.append(X.astype(np.complex128))
        X = np.concatenate(snaps, axis=1)
        Rs = X @ X.conj().T / X.shape[1]
        Rc = clairvoyant_covariance(params, scene, b, hard)
        rel = np.linalg.norm(Rs - Rc) / np.linalg.norm(Rc)
        assert rel < 0.05


class TestOptimalWeightsAndSinr:
    def test_distortionless(self, params, scene):
        b = params.easy_bins[2]
        R = clairvoyant_covariance(params, scene, b, hard=False)
        v = steering_matrix_easy(params)[:, 0].astype(np.complex128)
        w = optimal_weights(R, v)
        assert np.vdot(v, w) == pytest.approx(1.0, abs=1e-9)

    def test_optimal_beats_quiescent(self, params, scene):
        b = params.easy_bins[2]
        R = clairvoyant_covariance(params, scene, b, hard=False)
        v = steering_matrix_easy(params)[:, 1].astype(np.complex128)
        w_opt = optimal_weights(R, v)
        w_q = v / np.vdot(v, v)
        assert output_sinr(w_opt, R, v) > output_sinr(w_q, R, v)

    def test_dimension_mismatch(self):
        with pytest.raises(ConfigurationError):
            optimal_weights(np.eye(4), np.ones(3))


class TestSinrLoss:
    def test_curve_shape(self, params, scene):
        loss = sinr_loss_curve(params, scene, beam=1)
        assert loss.shape == (params.n_doppler_bins,)
        assert np.all(loss > 0) and np.all(loss <= 1.0 + 1e-9)

    def test_notch_at_beam_aligned_clutter_doppler(self, params, scene):
        """The deepest loss sits where clutter Doppler matches the
        beam's angle: f = 0.5 sin(angle)."""
        for beam in range(params.n_beams):
            loss = sinr_loss_curve(params, scene, beam=beam)
            f_clutter = 0.5 * np.sin(params.beam_angles[beam])
            expected_bin = round(f_clutter * params.n_pulses) % params.n_pulses
            worst = int(np.argmin(loss))
            d = min(
                abs(worst - expected_bin),
                params.n_pulses - abs(worst - expected_bin),
            )
            assert d <= 1, (beam, worst, expected_bin)

    def test_quiet_environment_has_no_loss(self, params):
        quiet = Scenario(targets=(), jammers=(), cnr_db=float("-inf"))
        loss = sinr_loss_curve(params, quiet, beam=0)
        assert np.allclose(loss, 1.0, atol=1e-6)

    def test_invalid_beam(self, params, scene):
        with pytest.raises(ConfigurationError):
            sinr_loss_curve(params, scene, beam=99)
