"""Fault-model tests: server outages, flaky disks, retry/failover, replication.

Covers the IOServer up/down state machine, the chained-declustering
replica layout, the client retry/backoff/failover path, the
counting-at-disk-completion accounting fix, and the FS-level open-handle
leak detector (including the RadarWriter regression).
"""

import pytest

from repro.errors import (
    ConfigurationError,
    FlakyDiskError,
    IOFaultError,
    RetriesExhaustedError,
    ServerDownError,
)
from repro.io.fileset import CubeFileSet
from repro.io.writer import RadarWriter
from repro.machine.presets import generic_cluster
from repro.pfs import PFS, DiskSpec, RetryPolicy
from repro.pfs.stripe import StripeLayout
from repro.sim.kernel import Kernel


def make_fs(sf=4, n_compute=4, unit=1024, disk=None, replication=1, retry=None):
    k = Kernel()
    m = generic_cluster().build(k, n_compute=n_compute, n_io=sf)
    fs = PFS(
        m,
        stripe_unit=unit,
        stripe_factor=sf,
        disk=disk or DiskSpec(50e6, 1e-3),
        replication=replication,
        retry=retry,
    )
    return k, fs


def run(k, gen):
    """Drive a process generator to completion; return value or raised error."""
    out = {}

    def wrapper():
        try:
            out["value"] = yield from gen
        except Exception as exc:  # noqa: BLE001 - tests inspect the error
            out["error"] = exc

    k.process(wrapper())
    k.run()
    if "error" in out:
        raise out["error"]
    return out.get("value")


class TestReplicaLayout:
    def test_chained_declustering(self):
        layout = StripeLayout(1024, 4, replication=2)
        assert layout.replica_directories(0) == (0, 1)
        assert layout.replica_directories(3) == (3, 0)  # wraps around

    def test_replication_one_is_identity(self):
        layout = StripeLayout(1024, 4)
        assert layout.replication == 1
        assert layout.replica_directories(2) == (2,)

    def test_full_replication(self):
        layout = StripeLayout(1024, 3, replication=3)
        assert layout.replica_directories(1) == (1, 2, 0)

    def test_replication_bounds(self):
        with pytest.raises(ConfigurationError):
            StripeLayout(1024, 4, replication=0)
        with pytest.raises(ConfigurationError):
            StripeLayout(1024, 4, replication=5)  # > stripe_factor

    def test_bad_directory_rejected(self):
        layout = StripeLayout(1024, 4, replication=2)
        with pytest.raises(ConfigurationError):
            layout.replica_directories(4)

    def test_repr_mentions_replication_only_when_on(self):
        assert "replication" not in repr(StripeLayout(1024, 4))
        assert "replication=2" in repr(StripeLayout(1024, 4, replication=2))


class TestServerStateMachine:
    def test_down_server_rejects_new_requests(self):
        k, fs = make_fs(sf=1)
        srv = fs.servers[0]
        srv.set_down()
        with pytest.raises(ServerDownError):
            run(k, srv.service(1024, 1, dest_node=0))
        assert srv.requests_failed == 1 and srv.requests_served == 0

    def test_outage_counted_once_per_transition(self):
        _, fs = make_fs(sf=1)
        srv = fs.servers[0]
        srv.set_down()
        srv.set_down()  # already down: not a second outage
        assert srv.outages == 1
        srv.set_up()
        srv.set_down()
        assert srv.outages == 2

    def test_scheduled_outage_recovers(self):
        k, fs = make_fs(sf=1)
        srv = fs.servers[0]
        srv.schedule_outage(at_time=1.0, down_for=2.0)
        k.run(until=0.5)
        assert srv.up
        k.run(until=1.5)
        assert not srv.up
        k.run(until=4.0)
        assert srv.up and srv.outages == 1

    def test_permanent_outage_never_recovers(self):
        k, fs = make_fs(sf=1)
        srv = fs.servers[0]
        srv.schedule_outage(at_time=1.0, down_for=None)
        k.run()
        assert not srv.up

    def test_mid_service_crash_drops_inflight_request(self):
        disk = DiskSpec(bandwidth=1e6, overhead=0.0)
        k, fs = make_fs(sf=1, disk=disk)
        srv = fs.servers[0]
        srv.schedule_outage(at_time=0.05, down_for=None)  # mid disk service
        with pytest.raises(ServerDownError):
            run(k, srv.service(100_000, 1, dest_node=0))  # 0.1 s of disk time
        assert srv.requests_served == 0 and srv.requests_failed == 1


class TestServedVsShippedAccounting:
    def test_served_credited_at_disk_completion_before_ship(self):
        # 100 KB at 1 MB/s = 0.1 s of disk; the network leg to node 0
        # takes ~0.85 ms more.  Stop the clock in between.
        disk = DiskSpec(bandwidth=1e6, overhead=0.0)
        k, fs = make_fs(sf=1, disk=disk)
        srv = fs.servers[0]
        k.process(srv.service(100_000, 1, dest_node=0))
        k.run(until=0.1004)
        assert srv.requests_served == 1
        assert srv.bytes_served == 100_000
        assert srv.bytes_shipped == 0  # still on the wire
        k.run()
        assert srv.bytes_shipped == 100_000

    def test_no_ship_leg_never_ships(self):
        k, fs = make_fs(sf=1)
        srv = fs.servers[0]
        run(k, srv.service(4096, 1, dest_node=0, ship=False))
        assert srv.bytes_served == 4096 and srv.bytes_shipped == 0


class TestFlakyDisk:
    def _failure_pattern(self, seed, n=20):
        k, fs = make_fs(sf=1)
        srv = fs.servers[0]
        srv.set_flaky(0.5, seed=seed)
        pattern = []
        for _ in range(n):
            try:
                run(k, srv.service(1024, 1, dest_node=0))
                pattern.append(True)
            except FlakyDiskError:
                pattern.append(False)
        return pattern, srv

    def test_deterministic_failures(self):
        a, _ = self._failure_pattern(seed=7)
        b, _ = self._failure_pattern(seed=7)
        assert a == b
        c, _ = self._failure_pattern(seed=8)
        assert a != c  # different seed, different draws

    def test_failed_requests_counted(self):
        pattern, srv = self._failure_pattern(seed=7)
        assert srv.requests_failed == pattern.count(False)
        assert srv.requests_served == pattern.count(True)


class TestRetryAndFailover:
    def test_failover_reads_from_mirror(self):
        k, fs = make_fs(sf=2, replication=2)
        fs.create("p", phantom_size=4096)
        fs.servers[0].set_down()
        h = fs.open("p", 0)
        out = run(k, fs.read(h, 0, 4096))
        assert out.nbytes == 4096
        # Every unit came off the mirror; the primary served nothing.
        assert fs.servers[0].requests_served == 0
        assert fs.servers[1].bytes_served >= 4096

    def test_retry_rides_out_transient_outage(self):
        k, fs = make_fs(sf=1)
        fs.enable_fault_tolerance()
        fs.create("p", phantom_size=1024)
        fs.servers[0].schedule_outage(at_time=0.0, down_for=0.3)
        h = fs.open("p", 0)
        out = run(k, fs.read(h, 0, 1024))
        assert out.nbytes == 1024
        assert fs.servers[0].requests_failed > 0  # early attempts bounced
        assert k.now >= 0.3  # had to wait for recovery

    def test_retries_exhausted_on_permanent_outage(self):
        k, fs = make_fs(sf=1, retry=RetryPolicy(max_attempts=3))
        fs.enable_fault_tolerance()
        fs.create("p", phantom_size=1024)
        fs.servers[0].set_down()
        h = fs.open("p", 0)
        with pytest.raises(RetriesExhaustedError):
            run(k, fs.read(h, 0, 1024))

    def test_backoff_schedule_is_capped_exponential(self):
        policy = RetryPolicy()
        delays = [policy.backoff(c) for c in range(7)]
        assert delays == [0.05, 0.1, 0.2, 0.4, 0.8, 1.0, 1.0]

    def test_request_timeout_bounds_an_attempt(self):
        # A huge request on a slow disk: without replication the client
        # times out, retries, and (server still slow, not down) succeeds
        # on a later attempt only if the timeout allows — here it never
        # does, so the read exhausts its retries in bounded time.
        disk = DiskSpec(bandwidth=1e3, overhead=0.0)  # 1 KB/s: 4 s per unit
        policy = RetryPolicy(max_attempts=2, request_timeout=0.1, backoff_base=0.01)
        k, fs = make_fs(sf=1, unit=8192, disk=disk, retry=policy)
        fs.enable_fault_tolerance()
        fs.create("p", phantom_size=4096)
        h = fs.open("p", 0)
        with pytest.raises(RetriesExhaustedError):
            run(k, fs.read(h, 0, 4096))

    def test_replication_changes_no_timing_without_faults(self):
        def elapsed(replication):
            k, fs = make_fs(sf=4, replication=replication)
            fs.create("p", phantom_size=64 * 1024)
            h = fs.open("p", 0)
            run(k, fs.read(h, 0, 64 * 1024))
            return k.now

        # Reads go primary-first, so a fault-free read never touches the
        # mirrors: identical timing, which is what keeps the golden
        # result hashes stable.
        assert elapsed(2) == elapsed(1)


class TestMirroredWrites:
    def test_write_lands_on_every_replica(self):
        k, fs = make_fs(sf=2, replication=2)
        fs.create("f")
        h = fs.open("f", 0)
        payload = b"x" * 2048
        run(k, fs.write(h, 0, payload))
        assert fs.servers[0].bytes_served >= 2048
        assert fs.servers[1].bytes_served >= 2048
        out = run(k, fs.read(h, 0, 2048))
        assert out == payload

    def test_write_survives_one_dead_replica(self):
        k, fs = make_fs(sf=2, replication=2, retry=RetryPolicy(max_attempts=2))
        fs.create("f")
        fs.servers[1].set_down()
        h = fs.open("f", 0)
        run(k, fs.write(h, 0, b"y" * 1024))
        assert fs.servers[0].bytes_served >= 1024

    def test_write_fails_when_all_replicas_dead(self):
        k, fs = make_fs(sf=2, replication=2, retry=RetryPolicy(max_attempts=2))
        fs.create("f")
        fs.servers[0].set_down()
        fs.servers[1].set_down()
        h = fs.open("f", 0)
        with pytest.raises(RetriesExhaustedError):
            run(k, fs.write(h, 0, b"z" * 1024))


class TestFaultErrorsAreIOFaults:
    def test_hierarchy(self):
        for exc in (ServerDownError, FlakyDiskError, RetriesExhaustedError):
            assert issubclass(exc, IOFaultError)


class TestHandleAccounting:
    def test_open_close_balance(self):
        _, fs = make_fs()
        fs.create("a")
        assert fs.open_handle_count == 0
        h1 = fs.open("a", 0)
        h2 = fs.open("a", 1)
        assert fs.open_handle_count == 2
        h1.close()
        h1.close()  # idempotent: no double decrement
        fs.close(h2)
        assert fs.open_handle_count == 0

    def test_context_manager_closes_on_error(self):
        _, fs = make_fs()
        fs.create("a")
        with pytest.raises(RuntimeError):
            with fs.open("a", 0):
                raise RuntimeError("boom")
        assert fs.open_handle_count == 0

    def test_gopen_handles_counted(self):
        _, fs = make_fs()
        fs.create("a")
        handles = fs.gopen("a", [0, 1, 2])
        assert fs.open_handle_count == 3
        for h in handles:
            h.close()
        assert fs.open_handle_count == 0

    def test_radar_writer_leaks_no_handles(self, tiny_params):
        # Regression: RadarWriter.run used to open a handle per CPI and
        # never close it.
        k, fs = make_fs()
        fset = CubeFileSet(fs, tiny_params)
        fset.initialize()
        w = RadarWriter(fset, node_id=0, period=0.05, n_cpis=5)
        k.process(w.run(k))
        k.run()
        assert w.writes_done == 5
        assert fs.open_handle_count == 0
