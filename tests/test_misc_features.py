"""Tests for smaller features: heatmap rendering, the error hierarchy,
pipeline CFAR-method selection, and public API surface checks."""

import numpy as np
import pytest

import repro
import repro.errors as errors
from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineExecutor
from repro.core.pipeline import NodeAssignment, build_embedded_pipeline
from repro.machine.presets import paragon
from repro.stap.chain import run_cpi_stream
from repro.stap.scenario import Scenario, make_cube
from repro.trace.report import heatmap


class TestHeatmap:
    def test_basic_shape(self):
        out = heatmap(np.array([[1.0, 10.0], [100.0, 1000.0]]))
        lines = out.splitlines()
        assert len(lines) == 2
        assert all(l.startswith(" |") and l.endswith("|") for l in lines)

    def test_peak_gets_brightest_char(self):
        out = heatmap(np.array([[1e-9, 1.0]]), db_floor=-40.0)
        assert out.splitlines()[0].rstrip("|")[-1] == "@"

    def test_floor_gets_dimmest(self):
        out = heatmap(np.array([[1e-12, 1.0]]), db_floor=-40.0)
        row = out.splitlines()[0]
        assert row[row.index("|") + 1] == " "

    def test_labels_and_title(self):
        out = heatmap(
            np.ones((2, 3)), title="T", row_labels=["aa", "b"], col_label="cols"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("aa |")
        assert lines[2].startswith(" b |")
        assert "cols" in lines[-1]

    def test_degenerate_inputs(self):
        assert "(no data)" in heatmap(np.zeros((0, 0)))
        assert "(no data)" in heatmap(np.zeros(3))  # 1-D
        assert "(all-zero" in heatmap(np.zeros((2, 2)))


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    def test_specific_parents(self):
        assert issubclass(errors.DeadlockError, errors.SimulationError)
        assert issubclass(errors.PartitionError, errors.ConfigurationError)
        assert issubclass(errors.TruncationError, errors.MPIError)
        assert issubclass(errors.AsyncUnsupportedError, errors.FileSystemError)
        assert issubclass(errors.DependencyError, errors.PipelineError)

    def test_single_except_catches_everything(self):
        try:
            raise errors.NoSuchFileError("x")
        except errors.ReproError:
            pass


class TestPublicAPI:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_all_resolves(self):
        import repro.core as core
        import repro.stap as stap
        import repro.trace as trace

        for mod in (core, stap, trace):
            for name in mod.__all__:
                assert getattr(mod, name) is not None, (mod.__name__, name)

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestPipelineCfarMethod:
    def test_goca_pipeline_matches_goca_chain(self, small_params):
        """The CFAR method threads through params into the distributed
        sink task; chain equivalence must hold for every method."""
        from dataclasses import replace

        params = replace(small_params, cfar_method="goca")
        scenario = Scenario.standard(params, seed=7)
        cubes = [make_cube(params, scenario, k) for k in range(3)]
        serial = sorted(
            d for r in run_cpi_stream(cubes, params) for d in r.detections
        )
        res = PipelineExecutor(
            build_embedded_pipeline(NodeAssignment.balanced(params, 20)),
            params, paragon(), FSConfig("pfs", 8),
            ExecutionConfig(n_cpis=3, warmup=1, compute=True),
            scenario=scenario,
        ).run()
        got = [(d.cpi_index, d.doppler_bin, d.beam, d.range_gate) for d in res.detections]
        want = [(d.cpi_index, d.doppler_bin, d.beam, d.range_gate) for d in serial]
        assert got == want and len(got) > 0

    def test_invalid_method_rejected_at_params(self):
        from repro.stap.params import STAPParams

        with pytest.raises(errors.ConfigurationError):
            STAPParams(cfar_method="bogus")

    def test_method_changes_detection_set(self, small_params):
        """The method knob has an effect (different marginal cells), and
        every method still finds both injected targets."""
        from dataclasses import replace

        import numpy as np

        scenario = Scenario.standard(small_params, seed=7)
        cubes = [make_cube(small_params, scenario, k) for k in range(2)]
        sets = {}
        for method in ("ca", "goca", "os"):
            params = replace(small_params, cfar_method=method)
            results = run_cpi_stream(cubes, params)
            sets[method] = {
                (d.cpi_index, d.doppler_bin, d.beam, d.range_gate)
                for r in results
                for d in r.detections
            }
            # Both targets present in the adaptive CPI regardless of method.
            for t in scenario.targets:
                b = round(t.doppler * params.n_pulses) % params.n_pulses
                beam = int(np.argmin(np.abs(params.beam_angles - t.angle)))
                assert (1, b, beam, t.range_gate) in sets[method], method
        assert sets["ca"] != sets["os"]


class TestRobustness:
    def test_detection_robust_across_seeds(self, small_params):
        """The validation scene's targets are found for any noise seed —
        the chain's performance is not a lucky draw."""
        import numpy as np

        from repro.stap.chain import run_cpi_stream

        for seed in (1, 2, 3, 11, 42):
            sc = Scenario.standard(small_params, seed=seed)
            cubes = [make_cube(small_params, sc, k) for k in range(2)]
            res = run_cpi_stream(cubes, small_params)[1]
            cells = {(d.doppler_bin, d.beam, d.range_gate) for d in res.detections}
            for t in sc.targets:
                b = round(t.doppler * small_params.n_pulses) % small_params.n_pulses
                beam = int(np.argmin(np.abs(small_params.beam_angles - t.angle)))
                assert (b, beam, t.range_gate) in cells, (seed, t)

    def test_metrics_stable_across_window_length(self, small_params):
        """Steady-state throughput must not depend on how long we run."""
        a = NodeAssignment.balanced(small_params, 20)
        spec = build_embedded_pipeline(a)
        thr = {}
        for n_cpis in (6, 12):
            res = PipelineExecutor(
                spec, small_params, paragon(), FSConfig("pfs", 8),
                ExecutionConfig(n_cpis=n_cpis, warmup=2),
            ).run()
            thr[n_cpis] = res.throughput
        assert thr[12] == pytest.approx(thr[6], rel=0.05)
