"""Tests for the task graph and the paper's Eq. 1-4 semantics."""

import pytest

from repro.errors import DependencyError
from repro.core.graph import DependencyKind, Edge, TaskGraph
from repro.core.pipeline import (
    NodeAssignment,
    build_embedded_pipeline,
    build_separate_io_pipeline,
    combine_pulse_cfar,
)
from repro.core.task import TaskKind, TaskSpec

SD, TD = DependencyKind.SPATIAL, DependencyKind.TEMPORAL


def spec(name, nodes=1, kind=TaskKind.CFAR):
    return TaskSpec(name, kind, nodes)


@pytest.fixture
def assignment(small_params):
    return NodeAssignment.balanced(small_params, 20, io_nodes=4)


class TestConstruction:
    def test_duplicate_names_rejected(self):
        with pytest.raises(DependencyError):
            TaskGraph([spec("a"), spec("a")], [])

    def test_unknown_edge_target(self):
        with pytest.raises(DependencyError):
            TaskGraph([spec("a")], [Edge("a", "ghost", SD)])

    def test_self_edge_rejected(self):
        with pytest.raises(DependencyError):
            TaskGraph([spec("a")], [Edge("a", "a", SD)])

    def test_cycle_rejected(self):
        with pytest.raises(DependencyError):
            TaskGraph(
                [spec("a"), spec("b")],
                [Edge("a", "b", SD), Edge("b", "a", SD)],
            )

    def test_successors_predecessors(self):
        g = TaskGraph(
            [spec("a"), spec("b"), spec("c")],
            [Edge("a", "b", SD), Edge("a", "c", TD)],
        )
        assert g.successors("a") == ["b", "c"]
        assert g.successors("a", SD) == ["b"]
        assert g.predecessors("c", TD) == ["a"]
        assert g.has_temporal_input("c") and not g.has_temporal_input("b")


class TestPaperEquations:
    def test_throughput_is_inverse_of_max(self):
        g = TaskGraph([spec("a"), spec("b")], [Edge("a", "b", SD)])
        assert g.throughput({"a": 0.5, "b": 0.25}) == pytest.approx(2.0)

    def test_throughput_needs_positive_times(self):
        g = TaskGraph([spec("a")], [])
        with pytest.raises(DependencyError):
            g.throughput({"a": 0.0})

    def test_latency_excludes_temporal_tasks(self, assignment):
        spec7 = build_embedded_pipeline(assignment)
        stages = spec7.graph.latency_path_tasks()
        flat = [t for stage in stages for t in stage]
        assert "easy_weight" not in flat and "hard_weight" not in flat

    def test_eq2_seven_task_latency(self, assignment):
        """latency = T0 + max(T3, T4) + T5 + T6 (paper Eq. 2)."""
        spec7 = build_embedded_pipeline(assignment)
        times = {
            "doppler": 1.0,
            "easy_weight": 100.0,   # must not matter
            "hard_weight": 100.0,   # must not matter
            "easy_bf": 2.0,
            "hard_bf": 3.0,
            "pulse_compr": 4.0,
            "cfar": 5.0,
        }
        assert spec7.graph.latency(times) == pytest.approx(1 + 3 + 4 + 5)

    def test_eq4_eight_task_latency(self, assignment):
        """latency = T0' + T1 + max(T4, T5) + T6 + T7 (paper Eq. 4)."""
        spec8 = build_separate_io_pipeline(assignment)
        times = {
            "read": 0.5,
            "doppler": 1.0,
            "easy_weight": 100.0,
            "hard_weight": 100.0,
            "easy_bf": 2.0,
            "hard_bf": 3.0,
            "pulse_compr": 4.0,
            "cfar": 5.0,
        }
        assert spec8.graph.latency(times) == pytest.approx(0.5 + 1 + 3 + 4 + 5)

    def test_separate_io_adds_exactly_one_term(self, assignment):
        t = {
            "doppler": 1.0, "easy_weight": 9.0, "hard_weight": 9.0,
            "easy_bf": 1.0, "hard_bf": 1.0, "pulse_compr": 1.0, "cfar": 1.0,
        }
        lat7 = build_embedded_pipeline(assignment).graph.latency(t)
        lat8 = build_separate_io_pipeline(assignment).graph.latency({**t, "read": 0.7})
        assert lat8 == pytest.approx(lat7 + 0.7)

    def test_combined_pipeline_latency(self, assignment):
        """latency = T0 + max(T3, T4) + T5+6 (paper Eq. 12's left side)."""
        spec6 = combine_pulse_cfar(build_embedded_pipeline(assignment))
        times = {
            "doppler": 1.0, "easy_weight": 50.0, "hard_weight": 50.0,
            "easy_bf": 2.0, "hard_bf": 3.0, "pc_cfar": 6.0,
        }
        assert spec6.graph.latency(times) == pytest.approx(1 + 3 + 6)

    def test_latency_terms_rendering(self, assignment):
        s = build_embedded_pipeline(assignment).graph.latency_terms()
        assert "T[doppler]" in s and "max(" in s and "T[cfar]" in s

    def test_parallel_branch_takes_max(self):
        g = TaskGraph(
            [spec("src"), spec("l"), spec("r"), spec("sink")],
            [Edge("src", "l", SD), Edge("src", "r", SD),
             Edge("l", "sink", SD), Edge("r", "sink", SD)],
        )
        lat = g.latency({"src": 1, "l": 5, "r": 7, "sink": 2})
        assert lat == pytest.approx(1 + 7 + 2)
