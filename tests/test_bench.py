"""Tests for the experiment harness (small configurations)."""


from repro.bench.cases import PAPER_CASES, paper_cases, paper_filesystems
from repro.bench.experiments import (
    run_ablation_async,
    run_ablation_combination_analysis,
    run_single,
)
from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig
from repro.core.pipeline import NodeAssignment, build_embedded_pipeline
from repro.machine.presets import paragon

FAST = ExecutionConfig(n_cpis=4, warmup=1)


class TestCases:
    def test_paper_cases_totals(self):
        assert PAPER_CASES == (25, 50, 100)
        grid = paper_cases()
        assert len(grid) == 9
        assert {c.total_nodes for c in grid} == {25, 50, 100}

    def test_filesystem_grid(self):
        pairs = paper_filesystems()
        labels = [fs.label() for _, fs in pairs]
        assert labels == ["PFS sf=16", "PFS sf=64", "PIOFS sf=80"]
        assert pairs[2][0].name == "IBM SP"

    def test_case_labels(self):
        c = paper_cases()[0]
        assert "case 1" in c.label and "25 nodes" in c.label


class TestRunSingle:
    def test_returns_result(self, small_params):
        a = NodeAssignment.balanced(small_params, 14)
        res = run_single(
            build_embedded_pipeline(a), paragon(), FSConfig("pfs", 8),
            small_params, FAST,
        )
        assert res.throughput > 0 and res.fs_label == "PFS sf=8"


class TestAblations:
    def test_async_ablation_shows_overlap_benefit(self, small_params):
        # On identical hardware, async (PFS) must beat sync (PIOFS)
        # whenever the read is a visible, non-saturating fraction of the
        # cycle (fast SP CPUs, plenty of stripe directories).
        out = run_ablation_async(
            case_number=1, stripe_factor=16, params=small_params, cfg=FAST
        )
        assert out["pfs"].throughput >= out["piofs"].throughput

    def test_combination_analysis_both_improve(self):
        out = run_ablation_combination_analysis()
        assert out["throughput_gain"] > 1.2    # PC was starved: combining helps
        assert out["latency_gain"] > 1.2
        assert out["analysis"].latency_improves()


class TestRendering:
    def test_experiment_result_renders(self, small_params):
        from repro.bench.experiments import CellResult, ExperimentResult
        from repro.bench.cases import BenchCase

        a = NodeAssignment.balanced(small_params, 14)
        spec = build_embedded_pipeline(a)
        res = run_single(spec, paragon(), FSConfig("pfs", 8), small_params, FAST)
        cell = CellResult(
            BenchCase(1, 14, a, paragon(), FSConfig("pfs", 8)), res
        )
        exp = ExperimentResult(name="test", cells=[cell])
        text = exp.render()
        assert "throughput" in text and "doppler" in text
        charts = exp.render_charts()
        assert "#" in charts


class TestStragglerDrivers:
    def test_node_straggler_monotone(self, small_params):
        from repro.bench.experiments import run_ablation_straggler_node

        out = run_ablation_straggler_node(
            slow_factors=(1.0, 3.0), params=small_params, cfg=FAST
        )
        assert out[3.0].throughput < out[1.0].throughput
        assert out[3.0].latency > out[1.0].latency

    def test_disk_straggler_monotone(self, small_params):
        from repro.bench.experiments import run_ablation_straggler_disk

        out = run_ablation_straggler_disk(
            slow_factors=(1.0, 8.0), case_number=1, stripe_factor=8,
            params=small_params, cfg=FAST,
        )
        assert out[8.0].throughput <= out[1.0].throughput * 1.02
