"""Property-based stress tests for the message-passing layer.

Hypothesis generates random message schedules (sender, receiver, tag,
delay) and the test checks global delivery correctness: every message
arrives exactly once, at the matching receive, in per-(source, tag)
FIFO order — across all three network models.
"""

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.presets import generic_cluster, ibm_sp, paragon
from repro.mpi.communicator import Communicator
from repro.sim.kernel import Kernel

PRESETS = {"ideal": generic_cluster, "mesh": paragon, "switch": ibm_sp}


@st.composite
def schedules(draw):
    """A random but *matched* message schedule over a small world."""
    size = draw(st.integers(2, 6))
    n_msgs = draw(st.integers(1, 25))
    msgs = []
    for i in range(n_msgs):
        src = draw(st.integers(0, size - 1))
        dst = draw(st.integers(0, size - 1))
        tag = draw(st.integers(0, 3))
        delay = draw(st.floats(0.0, 1e-3, allow_nan=False))
        msgs.append((src, dst, tag, delay, i))
    net = draw(st.sampled_from(sorted(PRESETS)))
    return size, msgs, net


@given(schedules())
@settings(max_examples=60, deadline=None)
def test_every_message_delivered_exactly_once_in_order(schedule):
    size, msgs, net = schedule
    kernel = Kernel()
    machine = PRESETS[net]().build(kernel, n_compute=size)
    comm = Communicator.world(machine)

    # Partition the schedule into per-sender and per-receiver workloads.
    by_sender = defaultdict(list)
    by_receiver = defaultdict(lambda: defaultdict(int))
    for src, dst, tag, delay, uid in msgs:
        by_sender[src].append((dst, tag, delay, uid))
        by_receiver[dst][(src, tag)] += 1

    received = defaultdict(list)  # (dst, src, tag) -> [uid in arrival order]

    def sender(rc):
        for dst, tag, delay, uid in by_sender.get(rc.rank, []):
            if delay:
                yield rc.kernel.timeout(delay)
            rc.isend(uid, dst, tag)
        if False:  # pragma: no cover - generator marker for empty senders
            yield

    def receiver(rc):
        # Post exactly the matching receives, in an arbitrary but fixed
        # per-(source, tag) order.
        for (src, tag), count in sorted(by_receiver.get(rc.rank, {}).items()):
            for _ in range(count):
                uid = yield from rc.recv(source=src, tag=tag)
                received[(rc.rank, src, tag)].append(uid)
        if False:  # pragma: no cover
            yield

    for r in range(size):
        kernel.process(sender(comm.view(r)))
        kernel.process(receiver(comm.view(r)))
    kernel.run()

    # Exactly-once delivery.
    got = sorted(uid for uids in received.values() for uid in uids)
    assert got == sorted(uid for *_rest, uid in msgs)

    # Non-overtaking: per (src, dst, tag) the uids arrive in send order.
    for (dst, src, tag), uids in received.items():
        sent_order = [
            uid
            for s, d, t, _, uid in msgs
            if s == src and d == dst and t == tag
        ]
        # Senders emit in schedule order (delays only postpone the whole
        # prefix), so arrival order must be a stable subsequence match.
        assert uids == [u for u in sent_order if u in set(uids)]
