"""Tests for plan validation and Chrome-trace export."""

import json

import pytest

from repro.errors import PipelineError
from repro.core.pipeline import (
    NodeAssignment,
    build_embedded_pipeline,
    build_separate_io_pipeline,
    combine_pulse_cfar,
)
from repro.core.plan import PipelinePlan
from repro.core.validate import validate_plan
from repro.trace.collector import TraceCollector
from repro.trace.export import to_chrome_trace, write_chrome_trace
from repro.trace.record import Phase


class TestValidatePlan:
    @pytest.mark.parametrize(
        "builder",
        [
            build_embedded_pipeline,
            build_separate_io_pipeline,
            lambda a: combine_pulse_cfar(build_embedded_pipeline(a)),
        ],
        ids=["embedded", "separate", "combined"],
    )
    def test_builders_produce_valid_plans(self, small_params, builder):
        a = NodeAssignment.balanced(small_params, 20, io_nodes=4)
        validate_plan(PipelinePlan(builder(a), small_params))

    def test_paper_cases_valid(self):
        from repro.stap.params import STAPParams

        params = STAPParams()
        for case in (1, 2, 3):
            a = NodeAssignment.case(case, params)
            validate_plan(PipelinePlan(build_embedded_pipeline(a), params))
            validate_plan(PipelinePlan(build_separate_io_pipeline(a), params))

    def test_extreme_assignments_valid(self, small_params):
        """Lopsided but legal assignments must still route coherently."""
        for a in (
            NodeAssignment(1, 1, 1, 1, 1, 1, 1, io_nodes=1),
            NodeAssignment(12, 1, 1, 1, 1, 1, 1, io_nodes=2),
            NodeAssignment(1, 1, 1, 1, 1, 12, 12, io_nodes=9),
        ):
            for builder in (build_embedded_pipeline, build_separate_io_pipeline):
                validate_plan(PipelinePlan(builder(a), small_params))

    def test_corrupted_plan_detected(self, small_params):
        a = NodeAssignment.balanced(small_params, 20)
        plan = PipelinePlan(build_embedded_pipeline(a), small_params)
        # Sabotage: shrink the Doppler range partition behind the plan's back.
        from repro.core.partition import BlockPartition

        plan.ranges_doppler = BlockPartition(small_params.n_ranges // 2, 4)
        with pytest.raises(PipelineError, match="validation failed"):
            validate_plan(plan)

    def test_mismatched_expectation_detected(self, small_params):
        a = NodeAssignment.balanced(small_params, 20)
        plan = PipelinePlan(build_embedded_pipeline(a), small_params)
        plan.bf_expected_weight_producers = lambda c, easy: []  # type: ignore
        with pytest.raises(PipelineError, match="mirror"):
            validate_plan(plan)


class TestChromeExport:
    @pytest.fixture
    def trace(self):
        tc = TraceCollector()
        tc.add("doppler", 0, 0, Phase.RECV, 0.0, 0.5)
        tc.add("doppler", 0, 0, Phase.COMPUTE, 0.5, 2.0)
        tc.add("cfar", 1, 0, Phase.COMPUTE, 2.0, 2.5)
        return tc

    def test_event_structure(self, trace):
        events = to_chrome_trace(trace)
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {m["args"]["name"] for m in meta} == {"doppler", "cfar"}
        assert len(spans) == 3

    def test_timestamps_in_microseconds(self, trace):
        spans = [e for e in to_chrome_trace(trace) if e["ph"] == "X"]
        comp = next(e for e in spans if e["name"] == "compute cpi=0" and e["pid"] == 1)
        assert comp["ts"] == pytest.approx(0.5e6)
        assert comp["dur"] == pytest.approx(1.5e6)

    def test_tasks_map_to_pids_nodes_to_tids(self, trace):
        spans = [e for e in to_chrome_trace(trace) if e["ph"] == "X"]
        pids = {e["pid"] for e in spans}
        assert pids == {1, 2}

    def test_write_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        written = write_chrome_trace(trace, str(path))
        assert written == str(path)
        data = json.loads(path.read_text())
        assert len(data) == len(to_chrome_trace(trace))
        assert any(e.get("cat") == "compute" for e in data)

    def test_real_run_exports(self, small_params, tmp_path):
        from repro.core.context import ExecutionConfig
        from repro.core.executor import FSConfig, PipelineExecutor
        from repro.machine.presets import paragon

        res = PipelineExecutor(
            build_embedded_pipeline(NodeAssignment.balanced(small_params, 14)),
            small_params, paragon(), FSConfig("pfs", 4),
            ExecutionConfig(n_cpis=3, warmup=1),
        ).run()
        path = tmp_path / "run.json"
        write_chrome_trace(res.trace, str(path))
        data = json.loads(path.read_text())  # parses
        assert len(data) > 50
