"""Tests for STAP parameter validation and derived dimensions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stap.params import STAPParams


class TestValidation:
    def test_defaults_valid(self):
        p = STAPParams()
        assert p.n_channels == 16 and p.n_pulses == 128

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_channels": 1},
            {"n_pulses": 2},
            {"n_ranges": 4},
            {"n_hard_bins": 0},
            {"n_hard_bins": 128},
            {"n_beams": 0},
            {"n_training": 8},          # < 2*J
            {"n_training": 2000},       # > n_ranges
            {"pulse_len": 0},
            {"pulse_len": 5000},
            {"cfar_window": 0},
            {"cfar_guard": -1},
            {"pfa": 0.0},
            {"pfa": 1.0},
            {"dtype": np.dtype(np.float32)},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            STAPParams(**kwargs)


class TestDerived:
    def test_bin_partition_is_complete_and_disjoint(self):
        p = STAPParams()
        hard, easy = set(p.hard_bins), set(p.easy_bins)
        assert hard | easy == set(range(p.n_pulses))
        assert not (hard & easy)
        assert len(p.hard_bins) == p.n_hard_bins
        assert len(p.easy_bins) == p.n_easy_bins

    def test_hard_bins_centred_on_dc(self):
        p = STAPParams(n_hard_bins=4)
        # Two on each side of DC, wrapping: {126, 127, 0, 1}.
        assert set(p.hard_bins) == {126, 127, 0, 1}

    def test_bin_lists_sorted(self):
        p = STAPParams()
        assert list(p.hard_bins) == sorted(p.hard_bins)
        assert list(p.easy_bins) == sorted(p.easy_bins)

    def test_dof(self):
        p = STAPParams()
        assert p.easy_dof == 16 and p.hard_dof == 32

    def test_cube_size_is_16mib(self):
        p = STAPParams()
        assert p.cube_nbytes == 16 * 1024 * 1024

    def test_beam_angles_count_and_symmetry(self):
        p = STAPParams()
        angles = p.beam_angles
        assert len(angles) == p.n_beams
        assert np.allclose(np.sin(angles), -np.sin(angles[::-1]))

    def test_scaled_shrinks_ranges(self):
        p = STAPParams()
        q = p.scaled(0.25)
        assert q.n_ranges == 256
        assert q.n_training <= q.n_ranges
        assert q.n_channels == p.n_channels

    def test_scaled_keeps_validity(self):
        STAPParams().scaled(0.01)  # must not raise

    def test_frozen(self):
        p = STAPParams()
        with pytest.raises(Exception):
            p.n_channels = 3  # type: ignore[misc]
