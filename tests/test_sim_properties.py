"""Property-based tests of the DES kernel's core guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Kernel


@st.composite
def schedules(draw):
    """Random (delay, payload) action schedules, possibly with ties."""
    n = draw(st.integers(1, 40))
    delays = draw(
        st.lists(
            st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
            min_size=n, max_size=n,
        )
    )
    return delays


class TestKernelProperties:
    @given(schedules())
    @settings(max_examples=80, deadline=None)
    def test_actions_fire_in_time_order_with_fifo_ties(self, delays):
        k = Kernel()
        fired = []
        for i, d in enumerate(delays):
            k._push(d, lambda i=i, d=d: fired.append((d, i)))
        k.run()
        assert len(fired) == len(delays)
        # Non-decreasing in time; equal times preserve insertion order.
        for (t1, i1), (t2, i2) in zip(fired, fired[1:]):
            assert t1 < t2 or (t1 == t2 and i1 < i2)

    @given(schedules())
    @settings(max_examples=50, deadline=None)
    def test_clock_is_monotone_and_ends_at_max(self, delays):
        k = Kernel()
        stamps = []
        for d in delays:
            k._push(d, lambda: stamps.append(k.now))
        end = k.run()
        assert stamps == sorted(stamps)
        assert end == max(delays)

    @given(schedules())
    @settings(max_examples=50, deadline=None)
    def test_deterministic_replay(self, delays):
        def trial():
            k = Kernel()
            log = []

            def proc(k, i, d):
                yield k.timeout(d)
                log.append((i, k.now))
                yield k.timeout(d / 2 + 0.1)
                log.append((i, k.now))

            for i, d in enumerate(delays):
                k.process(proc(k, i, d))
            k.run()
            return log

        assert trial() == trial()

    @given(
        st.lists(st.floats(0.0, 50.0, allow_nan=False), min_size=1, max_size=20),
        st.floats(0.0, 60.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_run_until_never_overshoots(self, delays, until):
        k = Kernel()
        fired = []
        for d in delays:
            k._push(d, lambda d=d: fired.append(d))
        k.run(until=until)
        assert all(d <= until for d in fired)
        assert k.now == max([until] + [d for d in fired if d <= until]) or k.now == until

    @given(st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_resume_after_until_completes_everything(self, delays):
        k = Kernel()
        fired = []
        for d in delays:
            k._push(d, lambda d=d: fired.append(d))
        k.run(until=5.0)
        k.run()
        assert sorted(fired) == sorted(delays)
