"""Unit tests for repro.sim.kernel."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.kernel import Kernel
from repro.sim.resources import Store


class TestScheduling:
    def test_clock_starts_at_zero(self, kernel):
        assert kernel.now == 0.0

    def test_step_on_empty_queue_raises(self, kernel):
        with pytest.raises(SimulationError):
            kernel.step()

    def test_negative_delay_raises(self, kernel):
        with pytest.raises(SimulationError):
            kernel._push(-0.5, lambda: None)

    def test_equal_time_fires_in_insertion_order(self, kernel):
        order = []
        for i in range(5):
            kernel._push(1.0, lambda i=i: order.append(i))
        kernel.run()
        assert order == [0, 1, 2, 3, 4]

    def test_time_ordering(self, kernel):
        order = []
        kernel._push(3.0, lambda: order.append("c"))
        kernel._push(1.0, lambda: order.append("a"))
        kernel._push(2.0, lambda: order.append("b"))
        kernel.run()
        assert order == ["a", "b", "c"]

    def test_peek(self, kernel):
        assert kernel.peek() is None
        kernel._push(4.0, lambda: None)
        assert kernel.peek() == 4.0


class TestRun:
    def test_run_until_stops_clock(self, kernel):
        kernel.timeout(10.0)
        t = kernel.run(until=3.0)
        assert t == 3.0 and kernel.now == 3.0

    def test_run_until_past_all_events(self, kernel):
        kernel.timeout(1.0)
        t = kernel.run(until=5.0)
        assert t == 5.0

    def test_run_returns_final_time(self, kernel):
        kernel.timeout(7.0)
        assert kernel.run() == 7.0

    def test_resume_after_until(self, kernel):
        tmo = kernel.timeout(10.0)
        kernel.run(until=5.0)
        assert not tmo.triggered
        kernel.run()
        assert tmo.triggered and kernel.now == 10.0

    def test_deterministic_replay(self):
        def scenario():
            k = Kernel()
            log = []

            def proc(k, name, delay):
                yield k.timeout(delay)
                log.append((name, k.now))
                yield k.timeout(delay)
                log.append((name, k.now))

            for i, d in enumerate([0.3, 0.1, 0.2]):
                k.process(proc(k, f"p{i}", d))
            k.run()
            return log

        assert scenario() == scenario()


class TestDeadlockDetection:
    def test_blocked_process_raises_deadlock(self, kernel):
        store = Store(kernel)

        def blocked(k, s):
            yield s.get()

        kernel.process(blocked(kernel, store))
        with pytest.raises(DeadlockError):
            kernel.run()

    def test_no_deadlock_when_all_finish(self, kernel):
        def fine(k):
            yield k.timeout(1.0)

        kernel.process(fine(kernel))
        kernel.run()  # should not raise

    def test_deadlock_check_disabled(self, kernel):
        store = Store(kernel)

        def blocked(k, s):
            yield s.get()

        kernel.process(blocked(kernel, store))
        kernel.run(check_deadlock=False)  # no raise

    def test_run_until_does_not_deadlock_check(self, kernel):
        store = Store(kernel)

        def blocked(k, s):
            yield s.get()

        kernel.process(blocked(kernel, store))
        kernel.run(until=10.0)  # bounded run: no deadlock error


class TestFailurePropagation:
    def test_unobserved_process_exception_surfaces(self, kernel):
        def bad(k):
            yield k.timeout(1.0)
            raise ValueError("kaboom")

        kernel.process(bad(kernel))
        with pytest.raises(ValueError, match="kaboom"):
            kernel.run()

    def test_observed_failure_is_handled_by_waiter(self, kernel):
        def bad(k):
            yield k.timeout(1.0)
            raise ValueError("inner")

        outcome = []

        def waiter(k, proc):
            try:
                yield proc
            except ValueError as e:
                outcome.append(str(e))

        p = kernel.process(bad(kernel))
        kernel.process(waiter(kernel, p))
        kernel.run()
        assert outcome == ["inner"]

    def test_yielding_garbage_raises(self, kernel):
        def bad(k):
            yield 42

        kernel.process(bad(kernel))
        with pytest.raises(SimulationError, match="non-event"):
            kernel.run()
