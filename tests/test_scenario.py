"""Tests for the multi-tenant scenario layer (repro.scenario).

Covers the declarative spec (hashing, serialization, validation), the
shared-substrate execution seam, arrival-process determinism across
every execution path (inline, process pool, TCP service), per-tenant
observability, and the result-store flow.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.engine import ExperimentSpec, SweepRunner, run_spec
from repro.bench.store import ResultStore
from repro.core.arrivals import ArrivalSpec
from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, Substrate, validate_fs_hints
from repro.core.pipeline import NodeAssignment
from repro.errors import ConfigurationError
from repro.machine.presets import paragon
from repro.scenario import (
    ScenarioExecutor,
    ScenarioResult,
    ScenarioSpec,
    TenantSpec,
    run_scenario,
)

FAST = ExecutionConfig(n_cpis=2, warmup=0)


def tenant(small_params, nodes=14, **kw):
    kw.setdefault("assignment", NodeAssignment.balanced(small_params, nodes))
    kw.setdefault("cfg", FAST)
    return TenantSpec(**kw)


def scenario(small_params, n_tenants=2, **kw):
    kw.setdefault("tenants", tuple(
        tenant(small_params) for _ in range(n_tenants)
    ))
    kw.setdefault("fs", FSConfig(kind="pfs", stripe_factor=4))
    kw.setdefault("params", small_params)
    return ScenarioSpec(**kw)


# ---------------------------------------------------------------------------
# Spec: hashing, serialization, validation
# ---------------------------------------------------------------------------
class TestScenarioSpec:
    def test_round_trip_and_hash(self, small_params):
        spec = scenario(small_params, metrics_interval=0.5)
        d = spec.to_dict()
        assert d["kind"] == "scenario"
        back = ScenarioSpec.from_dict(json.loads(json.dumps(d)))
        assert back == spec
        assert back.spec_hash() == spec.spec_hash()
        assert spec.short_hash() == spec.spec_hash()[:12]

    def test_arrival_and_writer_survive_round_trip(self, small_params):
        cfg = ExecutionConfig(
            n_cpis=2, warmup=0, read_deadline=1.5,
            arrival=ArrivalSpec(kind="burst", period=4.0, burst_size=2,
                                burst_gap=0.5),
        )
        spec = scenario(
            small_params,
            tenants=(tenant(small_params, cfg=cfg, name="radar"),
                     tenant(small_params, pipeline="separate-io")),
        )
        back = ScenarioSpec.from_dict(spec.to_dict())
        assert back == spec
        assert back.tenants[0].cfg.arrival == cfg.arrival
        assert back.tenant_names() == ("radar", "t1")

    def test_hash_distinct_from_experiment_spec(self, small_params):
        # The "kind" marker keeps scenario hashes disjoint from cell
        # hashes even in a shared content-addressed store.
        exp = ExperimentSpec(
            assignment=NodeAssignment.balanced(small_params, 14),
            params=small_params, cfg=FAST,
            fs=FSConfig(kind="pfs", stripe_factor=4),
        )
        assert scenario(small_params, 1).spec_hash() != exp.spec_hash()

    def test_default_tenant_names_and_label(self, small_params):
        spec = scenario(small_params, 3)
        assert spec.tenant_names() == ("t0", "t1", "t2")
        assert "scenario[3]" in spec.label()
        assert spec.total_nodes() == 3 * spec.tenants[0].build_pipeline().total_nodes

    def test_validation(self, small_params):
        with pytest.raises(ConfigurationError, match="at least one tenant"):
            scenario(small_params, tenants=())
        with pytest.raises(ConfigurationError, match="unknown machine"):
            scenario(small_params, machine="cray")
        with pytest.raises(ConfigurationError, match="metrics_interval"):
            scenario(small_params, metrics_interval=0.0)
        with pytest.raises(ConfigurationError, match="unique"):
            scenario(small_params, tenants=(
                tenant(small_params, name="a"), tenant(small_params, name="a"),
            ))
        with pytest.raises(ConfigurationError, match="unknown pipeline"):
            tenant(small_params, pipeline="nope")


# ---------------------------------------------------------------------------
# Satellite: FS hint validation enumerates the catalogue
# ---------------------------------------------------------------------------
class TestHintErrors:
    def test_bad_value_lists_every_hint(self):
        fs_cfg = FSConfig(kind="pfs", stripe_factor=4, sieve_buffer_size=0)
        with pytest.raises(ConfigurationError) as err:
            Substrate.build(paragon(), fs_cfg, n_compute=4)
        msg = str(err.value)
        assert "must be >= 1" in msg and "Valid hints:" in msg
        for hint in ("sieve_buffer_size", "cb_nodes", "list_io_max_runs"):
            assert hint in msg

    def test_capability_mismatch_names_the_capability(self):
        fs_cfg = FSConfig(kind="piofs", stripe_factor=4, list_io_max_runs=8)
        with pytest.raises(ConfigurationError) as err:
            Substrate.build(paragon(), fs_cfg, n_compute=4)
        msg = str(err.value)
        assert "list_io_max_runs" in msg
        assert "supports_list_io" in msg and "'piofs'" in msg
        assert "Valid hints:" in msg


# ---------------------------------------------------------------------------
# The substrate seam: hosted single tenant == standalone run
# ---------------------------------------------------------------------------
class TestSubstrateSeam:
    def test_single_tenant_matches_standalone(self, small_params):
        a = NodeAssignment.balanced(small_params, 14)
        fs = FSConfig(kind="pfs", stripe_factor=4)
        standalone = run_spec(ExperimentSpec(
            assignment=a, pipeline="embedded-io", fs=fs,
            params=small_params, cfg=FAST,
        ))
        hosted = run_scenario(ScenarioSpec(
            tenants=(TenantSpec(assignment=a, cfg=FAST),),
            fs=fs, params=small_params,
        ))
        solo = hosted.tenants["t0"]
        # Same kernel schedule: the timing-derived numbers are exact.
        assert solo.measurement.to_dict() == standalone.measurement.to_dict()
        assert hosted.elapsed_sim_time == standalone.elapsed_sim_time
        # Substrate stats live on the scenario, not the hosted tenant.
        assert solo.disk_stats is None
        assert hosted.disk_stats["bytes_served"] == \
            standalone.disk_stats["bytes_served"]

    def test_two_tenants_share_and_interfere(self, small_params):
        solo = run_scenario(scenario(small_params, 1))
        duo = run_scenario(scenario(small_params, 2))
        base = solo.tenants["t0"].throughput
        assert set(duo.tenants) == {"t0", "t1"}
        for r in duo.tenants.values():
            assert r.throughput <= base * 1.02
        # Shared-substrate accounting attributes bytes per tenant.
        assert set(duo.tenant_bytes) == {"t0", "t1"}
        assert all(v > 0 for v in duo.tenant_bytes.values())
        total = duo.disk_stats["bytes_served"]
        assert total >= sum(duo.tenant_bytes.values())


# ---------------------------------------------------------------------------
# Satellite: arrival determinism across execution paths
# ---------------------------------------------------------------------------
class TestArrivalDeterminism:
    def arrival_spec(self, small_params):
        cfg = ExecutionConfig(
            n_cpis=3, warmup=0, read_deadline=30.0,
            arrival=ArrivalSpec(kind="poisson", period=0.2, seed=5),
        )
        return scenario(
            small_params,
            tenants=(tenant(small_params, cfg=cfg),
                     tenant(small_params, pipeline="separate-io", cfg=cfg)),
        )

    def test_same_seed_identical_results_across_jobs(self, small_params,
                                                     tmp_path):
        spec = self.arrival_spec(small_params)
        with SweepRunner(jobs=1, store=ResultStore(tmp_path / "s1")) as r1:
            serial = r1.run_one(spec)
        with SweepRunner(jobs=4, store=ResultStore(tmp_path / "s4")) as r4:
            pooled = r4.run_one(spec)
        assert isinstance(serial, ScenarioResult)
        assert serial.to_dict() == pooled.to_dict()

    def test_same_seed_identical_results_over_tcp(self, small_params,
                                                  tmp_path):
        from repro.service import ExperimentScheduler
        from repro.service.server import ExperimentServer, submit_batch

        spec = self.arrival_spec(small_params)
        direct = run_scenario(spec)
        store = ResultStore(tmp_path / "cache")
        with ExperimentScheduler(workers=0, store=store) as scheduler:
            with ExperimentServer(scheduler, port=0) as server:
                events = list(submit_batch(
                    server.host, server.port, [spec.to_dict()],
                    client="t", follow=True,
                ))
        results = [e for e in events if e["event"] == "result"]
        assert len(results) == 1
        assert results[0]["payload"] == direct.to_dict()

    def test_different_seed_differs(self, small_params):
        spec = self.arrival_spec(small_params)
        a = spec.tenants[0].cfg.arrival
        assert a.times(3) != ArrivalSpec(
            kind="poisson", period=0.2, seed=6
        ).times(3)


# ---------------------------------------------------------------------------
# Result store flow and result round trip
# ---------------------------------------------------------------------------
class TestStoreFlow:
    def test_cache_hit_returns_identical_scenario(self, small_params,
                                                  tmp_path):
        spec = scenario(small_params, 2)
        store = ResultStore(tmp_path / "cache")
        with SweepRunner(jobs=1, store=store) as runner:
            first = runner.run_one(spec)
            assert runner.executed == 1
            again = runner.run_one(spec)
            assert runner.cache_hits == 1
        assert first.to_dict() == again.to_dict()

    def test_result_round_trip(self, small_params):
        result = run_scenario(scenario(small_params, metrics_interval=0.5))
        back = ScenarioResult.from_dict(json.loads(
            json.dumps(result.to_dict())
        ))
        assert back.to_dict() == result.to_dict()
        assert list(back.tenants) == list(result.tenants)
        assert back.throughputs() == result.throughputs()


# ---------------------------------------------------------------------------
# Executor behavior: arrivals gate, tenants observable, gantt renders
# ---------------------------------------------------------------------------
class TestScenarioExecutor:
    def test_arrival_gating_delays_the_run(self, small_params):
        late = ExecutionConfig(
            n_cpis=2, warmup=0,
            arrival=ArrivalSpec(kind="fixed", period=5.0, offset=10.0),
        )
        spec = scenario(small_params, tenants=(
            tenant(small_params, cfg=late),
        ))
        result = run_scenario(spec)
        # CPI 1 only becomes available at t=15; the run must outlast it.
        assert result.elapsed_sim_time > 15.0

    def test_tenant_labelled_metrics(self, small_params):
        result = run_scenario(scenario(small_params, metrics_interval=0.5))
        names = list(result.metrics["counters"]) + \
            list(result.metrics["gauges"])
        assert any('tenant="t0"' in n for n in names)
        assert any('tenant="t1"' in n for n in names)
        assert any(n.startswith("pfs_tenant_bytes_total") for n in names)
        # Shared substrate gauges are unlabelled singletons.
        assert any(n.startswith("pfs_server_busy_seconds_total") for n in names)

    def test_drops_accounted_per_tenant(self, small_params):
        tight = ExecutionConfig(n_cpis=3, warmup=0, read_deadline=1e-6)
        result = run_scenario(scenario(small_params, tenants=(
            tenant(small_params, cfg=tight), tenant(small_params),
        )))
        drops = result.drops()
        assert drops["t0"] > 0 and drops["t1"] == 0

    def test_gantt_renders_every_tenant(self, small_params):
        ex = ScenarioExecutor(scenario(small_params, 2))
        ex.run()
        chart = ex.gantt(width=60)
        assert "--- t0 ---" in chart and "--- t1 ---" in chart
