"""Tests for detection-report write-back (output-side I/O)."""

import pytest

from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineExecutor
from repro.core.pipeline import (
    NodeAssignment,
    build_embedded_pipeline,
    combine_pulse_cfar,
)
from repro.machine.presets import paragon
from repro.stap.scenario import Scenario


@pytest.fixture
def assignment(small_params):
    return NodeAssignment.balanced(small_params, 20)


def run(spec, params, write_reports, compute=False, scenario=None, n_cpis=4):
    ex = PipelineExecutor(
        spec, params, paragon(), FSConfig("pfs", 8),
        ExecutionConfig(
            n_cpis=n_cpis, warmup=1, write_reports=write_reports,
            compute=compute,
        ),
        scenario=scenario,
    )
    return ex, ex.run()


class TestReportWriteback:
    def test_files_created_per_sink_node(self, small_params, assignment):
        spec = build_embedded_pipeline(assignment)
        ex, _ = run(spec, small_params, write_reports=True)
        n_sinks = spec.task("cfar").n_nodes
        for local in range(n_sinks):
            assert ex.fs.exists(f"reports_cfar_{local}.dat")

    def test_file_grows_per_cpi(self, small_params, assignment):
        spec = build_embedded_pipeline(assignment)
        ex, res = run(spec, small_params, write_reports=True, n_cpis=5)
        size = ex.fs.file_size("reports_cfar_0.dat")
        assert size > 0
        assert size % 5 == 0  # five equal per-CPI blocks

    def test_disabled_by_default(self, small_params, assignment):
        spec = build_embedded_pipeline(assignment)
        ex, _ = run(spec, small_params, write_reports=False)
        assert not ex.fs.exists("reports_cfar_0.dat")

    def test_combined_pipeline_writes(self, small_params, assignment):
        spec = combine_pulse_cfar(build_embedded_pipeline(assignment))
        ex, _ = run(spec, small_params, write_reports=True)
        assert ex.fs.exists("reports_pc_cfar_0.dat")

    def test_throughput_impact_negligible(self, small_params, assignment):
        """Report volume is ~5 orders below the input stream: writing it
        back must not move the needle (the journal paper's conclusion)."""
        spec = build_embedded_pipeline(assignment)
        _, off = run(spec, small_params, write_reports=False, n_cpis=6)
        _, on = run(spec, small_params, write_reports=True, n_cpis=6)
        assert on.throughput == pytest.approx(off.throughput, rel=0.02)

    def test_compute_mode_with_writeback_keeps_numerics(self, small_params, assignment):
        scenario = Scenario.standard(small_params, seed=7)
        spec = build_embedded_pipeline(assignment)
        _, off = run(spec, small_params, False, compute=True, scenario=scenario)
        _, on = run(spec, small_params, True, compute=True, scenario=scenario)
        key = lambda ds: [(d.cpi_index, d.doppler_bin, d.beam, d.range_gate) for d in ds]
        assert key(on.detections) == key(off.detections)

    def test_threaded_mode_with_writeback(self, small_params, assignment):
        spec = build_embedded_pipeline(assignment)
        ex = PipelineExecutor(
            spec, small_params, paragon(), FSConfig("pfs", 8),
            ExecutionConfig(n_cpis=4, warmup=1, write_reports=True, threaded=True),
        )
        res = ex.run()
        assert res.throughput > 0
        assert ex.fs.file_size("reports_cfar_0.dat") > 0
