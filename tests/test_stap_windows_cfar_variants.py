"""Tests for Doppler window selection and the GO/SO-CFAR variants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stap.cfar import (
    CFAR_METHODS,
    ca_cfar,
    go_so_false_alarm,
    go_so_threshold_factor,
)
from repro.stap.doppler import WINDOW_KINDS, doppler_window
from repro.stap.params import STAPParams


def _sidelobe_db(window: np.ndarray) -> float:
    """Peak sidelobe level of a window's transform, dB below mainlobe."""
    W = np.abs(np.fft.fft(window, 4096))
    main = W.max()
    # Find first null then the max beyond it.
    i = 1
    while i < 2048 and W[i] <= W[i - 1]:
        i += 1
    return 20.0 * np.log10(W[i:2048].max() / main)


class TestWindows:
    @pytest.mark.parametrize("kind", WINDOW_KINDS)
    def test_all_kinds_valid(self, kind):
        w = doppler_window(64, kind)
        assert w.shape == (64,) and w.dtype == np.float32
        assert np.all(w >= 0) and w.max() <= 1.0 + 1e-6

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            doppler_window(8, "kaiser")

    def test_rect_is_ones(self):
        assert np.all(doppler_window(16, "rect") == 1.0)

    def test_sidelobe_ordering(self):
        """rect worst, hamming best of the cosine family at modest N."""
        levels = {k: _sidelobe_db(doppler_window(64, k)) for k in WINDOW_KINDS}
        assert levels["rect"] > levels["hann"]
        assert levels["hann"] > levels["hamming"]
        assert levels["rect"] > -15  # ~-13 dB
        assert levels["hamming"] < -38

    def test_params_accepts_window_kind(self):
        p = STAPParams(window_kind="blackman")
        assert p.window_kind == "blackman"
        assert p.scaled(0.5).window_kind == "blackman"

    def test_params_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            STAPParams(window_kind="tukey")

    def test_window_kind_changes_doppler_output(self, tiny_params):
        from dataclasses import replace

        from repro.stap.doppler import doppler_process
        from repro.stap.scenario import Scenario, make_cube

        sc = Scenario.standard(tiny_params)
        cube = make_cube(tiny_params, sc, 0)
        out_hann = doppler_process(cube, tiny_params)
        out_rect = doppler_process(cube, replace(tiny_params, window_kind="rect"))
        assert not np.allclose(out_hann.easy, out_rect.easy)


class TestGoSoMath:
    def test_pfa_limits(self):
        for greatest in (True, False):
            assert go_so_false_alarm(0.0, 16, greatest) == pytest.approx(1.0)
            assert go_so_false_alarm(1e6, 16, greatest) < 1e-10

    def test_monotone_decreasing_in_t(self):
        ts = np.linspace(0.01, 2.0, 30)
        for greatest in (True, False):
            vals = [go_so_false_alarm(t, 8, greatest) for t in ts]
            assert all(vals[i] >= vals[i + 1] for i in range(len(vals) - 1))

    def test_go_needs_higher_threshold_for_lower_pfa(self):
        t4 = go_so_threshold_factor(16, 1e-4, greatest=True)
        t6 = go_so_threshold_factor(16, 1e-6, greatest=True)
        assert t6 > t4

    def test_so_threshold_above_go(self):
        """The smaller half underestimates the noise, so SO needs a
        larger multiplier for the same P_fa."""
        go = go_so_threshold_factor(16, 1e-4, greatest=True)
        so = go_so_threshold_factor(16, 1e-4, greatest=False)
        assert so > go

    @given(st.integers(2, 32), st.sampled_from([1e-2, 1e-3, 1e-4]))
    @settings(max_examples=30, deadline=None)
    def test_threshold_inverts_false_alarm(self, n_half, pfa):
        for greatest in (True, False):
            t = go_so_threshold_factor(n_half, pfa, greatest)
            assert go_so_false_alarm(t, n_half, greatest) == pytest.approx(
                pfa, rel=1e-3
            )

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            go_so_false_alarm(-1.0, 4, True)
        with pytest.raises(ConfigurationError):
            go_so_false_alarm(1.0, 0, True)
        with pytest.raises(ConfigurationError):
            go_so_threshold_factor(4, 1.5, True)


class TestCfarVariants:
    def _noise(self, shape, seed=0):
        rng = np.random.default_rng(seed)
        return (
            (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)) / np.sqrt(2)
        ).astype(np.complex64)

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            ca_cfar(self._noise((1, 1, 128)), [0], 8, 2, 1e-3, method="tm")

    @pytest.mark.parametrize("method", CFAR_METHODS)
    def test_pfa_calibrated(self, method):
        x = self._noise((8, 8, 2048), seed=42)
        pfa = 1e-3
        dets = ca_cfar(x, list(range(8)), window=16, guard=2, pfa=pfa, method=method)
        observed = len(dets) / x.size
        assert observed == pytest.approx(pfa, rel=0.5)

    @pytest.mark.parametrize("method", CFAR_METHODS)
    def test_strong_target_detected_by_all(self, method):
        x = self._noise((1, 1, 256), seed=1)
        x[0, 0, 100] = 50.0
        dets = ca_cfar(x, [0], window=16, guard=2, pfa=1e-6, method=method)
        assert any(d.range_gate == 100 for d in dets)

    def test_clutter_edge_behaviour(self):
        """The defining trade: GOCA suppresses edge alarms, SOCA floods."""
        x = self._noise((400, 1, 256), seed=1)
        x[..., 128:] *= np.sqrt(1000)  # 30 dB clutter step
        counts = {}
        for method in CFAR_METHODS:
            dets = ca_cfar(x, list(range(400)), window=16, guard=2,
                           pfa=1e-4, method=method)
            counts[method] = sum(1 for d in dets if 120 <= d.range_gate < 160)
        assert counts["goca"] < 0.5 * counts["ca"]
        assert counts["soca"] > 10 * counts["ca"]

    def test_masked_target_recovered_by_soca(self):
        """Two closely spaced targets: CA's window swallows the second;
        SOCA (smallest half) keeps the threshold low enough to see it."""
        x = self._noise((200, 1, 256), seed=9)
        x[:, 0, 100] += 12.0
        x[:, 0, 110] += 12.0  # inside the other's training window
        found = {}
        for method in ("ca", "soca"):
            dets = ca_cfar(x, list(range(200)), window=16, guard=2,
                           pfa=1e-4, method=method)
            found[method] = sum(
                1 for d in dets if d.range_gate in (100, 110)
            )
        assert found["soca"] >= found["ca"]

    def test_edge_cells_fall_back_to_ca(self):
        """Array-edge cells (truncated windows) must still work."""
        x = self._noise((1, 1, 128), seed=5)
        x[0, 0, 0] = 40.0
        for method in ("goca", "os"):
            dets = ca_cfar(x, [0], window=8, guard=2, pfa=1e-6, method=method)
            assert any(d.range_gate == 0 for d in dets), method


class TestOSCfar:
    def _noise(self, shape, seed=0):
        rng = np.random.default_rng(seed)
        return (
            (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)) / np.sqrt(2)
        ).astype(np.complex64)

    def test_rohling_formula_limits(self):
        from repro.stap.cfar import os_false_alarm

        assert os_false_alarm(0.0, 32, 24) == pytest.approx(1.0)
        assert os_false_alarm(1e9, 32, 24) < 1e-20

    def test_rohling_formula_known_value(self):
        from repro.stap.cfar import os_false_alarm

        # k = 1: P_fa = n / (n + t).
        assert os_false_alarm(3.0, 10, 1) == pytest.approx(10 / 13)

    def test_threshold_inverts(self):
        from repro.stap.cfar import os_false_alarm, os_threshold_factor

        for pfa in (1e-2, 1e-4, 1e-6):
            t = os_threshold_factor(32, 24, pfa)
            assert os_false_alarm(t, 32, 24) == pytest.approx(pfa, rel=1e-3)

    def test_invalid_rank(self):
        from repro.stap.cfar import os_false_alarm

        with pytest.raises(ConfigurationError):
            os_false_alarm(1.0, 8, 0)
        with pytest.raises(ConfigurationError):
            os_false_alarm(1.0, 8, 9)

    def test_immune_to_target_masking(self):
        """Three interferers inside the window: OS keeps detecting;
        CA's inflated average masks a large fraction."""
        x = self._noise((300, 1, 256), seed=9)
        for g in (100, 105, 110):
            x[:, 0, g] += 8.0
        hits = {}
        for method in ("ca", "os"):
            dets = ca_cfar(x, list(range(300)), window=16, guard=2,
                           pfa=1e-4, method=method)
            hits[method] = sum(
                1 for d in dets if d.range_gate in (100, 105, 110)
            )
        assert hits["os"] > 1.15 * hits["ca"]
        assert hits["os"] >= 0.99 * 900  # essentially all recovered

    def test_snr_estimate_unbiased(self):
        """The order-statistic noise estimate is unbiased via the
        harmonic correction, so reported SNR matches CA's within ~1 dB."""
        x = self._noise((50, 1, 512), seed=11)
        x[:, 0, 200] = 31.6  # ~30 dB
        for method in ("ca", "os"):
            dets = ca_cfar(x, list(range(50)), window=16, guard=2,
                           pfa=1e-5, method=method)
            snrs = [d.snr_db for d in dets if d.range_gate == 200]
            assert np.mean(snrs) == pytest.approx(30.0, abs=1.5), method
