"""Unit and property tests for the 2-D mesh network."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.machine.mesh import MeshNetwork
from repro.sim.kernel import Kernel


def mk(n, cols=None, latency=1e-5, bw=1e8):
    return MeshNetwork(Kernel(), n, latency, bw, cols=cols)


class TestTopology:
    def test_square_layout(self):
        net = mk(16)
        assert net.cols == 4 and net.rows == 4

    def test_non_square_count(self):
        net = mk(10)
        assert net.cols == 4 and net.rows == 3  # 12-slot grid, 10 populated

    def test_explicit_cols(self):
        net = mk(12, cols=6)
        assert net.cols == 6 and net.rows == 2

    def test_coords_roundtrip(self):
        net = mk(20, cols=5)
        for n in range(20):
            r, c = net.coords(n)
            assert net.node_at(r, c) == n

    def test_coords_out_of_range(self):
        with pytest.raises(ConfigurationError):
            mk(4).coords(4)

    def test_route_empty_for_self(self):
        assert mk(9).route(4, 4) == []

    def test_route_x_first(self):
        net = mk(9, cols=3)
        # 0 -> 8: (0,0) -> (0,2) -> (2,2)
        hops = net.route(0, 8)
        assert hops == [(0, 1), (1, 2), (2, 5), (5, 8)]

    def test_route_negative_directions(self):
        net = mk(9, cols=3)
        hops = net.route(8, 0)
        assert hops == [(8, 7), (7, 6), (6, 3), (3, 0)]

    def test_route_length_is_manhattan_distance(self):
        net = mk(25, cols=5)
        for s, d in [(0, 24), (3, 17), (11, 2)]:
            (sr, sc), (dr, dc) = net.coords(s), net.coords(d)
            assert len(net.route(s, d)) == abs(sr - dr) + abs(sc - dc)

    @given(
        st.integers(min_value=2, max_value=36),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_route_hops_are_adjacent_and_reach(self, n, data):
        net = mk(n)
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1))
        hops = net.route(src, dst)
        pos = src
        for a, b in hops:
            assert a == pos
            (ar, ac), (br, bc) = divmod(a, net.cols), divmod(b, net.cols)
            assert abs(ar - br) + abs(ac - bc) == 1
            pos = b
        assert pos == dst


class TestTransfer:
    def run_transfers(self, net, jobs):
        """jobs: list of (src, dst, nbytes); returns completion times."""
        k = net.kernel
        times = {}

        def mover(k, net, i, s, d, nb):
            yield from net.transfer(s, d, nb)
            times[i] = k.now

        for i, (s, d, nb) in enumerate(jobs):
            k.process(mover(k, net, i, s, d, nb))
        k.run()
        return times

    def test_single_transfer_time(self):
        net = mk(4, latency=1e-3, bw=1e6)
        times = self.run_transfers(net, [(0, 3, 1000)])
        assert times[0] == pytest.approx(1e-3 + 1000 / 1e6)

    def test_local_transfer_is_cheap(self):
        net = mk(4, latency=1e-3, bw=1e6)
        times = self.run_transfers(net, [(2, 2, 10**9)])
        assert times[0] == pytest.approx(0.5e-3)

    def test_disjoint_paths_do_not_contend(self):
        net = mk(16, cols=4, latency=0.0, bw=1e6)
        # Row 0 and row 3 transfers share no links.
        times = self.run_transfers(net, [(0, 3, 1e6), (12, 15, 1e6)])
        assert times[0] == pytest.approx(1.0)
        assert times[1] == pytest.approx(1.0)

    def test_shared_link_serialises(self):
        net = mk(4, cols=4, latency=0.0, bw=1e6)
        # Both 0->3 and 1->3 traverse link 1->2 and 2->3.
        times = self.run_transfers(net, [(0, 3, 1e6), (1, 3, 1e6)])
        assert min(times.values()) == pytest.approx(1.0)
        assert max(times.values()) == pytest.approx(2.0)

    def test_many_to_one_serialises_fully(self):
        net = mk(8, cols=8, latency=0.0, bw=1e6)
        jobs = [(i, 7, 1e6) for i in range(4)]
        times = self.run_transfers(net, jobs)
        assert max(times.values()) == pytest.approx(4.0)

    def test_bidirectional_links_are_independent(self):
        net = mk(2, cols=2, latency=0.0, bw=1e6)
        times = self.run_transfers(net, [(0, 1, 1e6), (1, 0, 1e6)])
        assert times[0] == pytest.approx(1.0)
        assert times[1] == pytest.approx(1.0)

    def test_opposing_traffic_no_deadlock(self):
        net = mk(9, cols=3, latency=0.0, bw=1e7)
        jobs = [(0, 8, 1e6), (8, 0, 1e6), (2, 6, 1e6), (6, 2, 1e6)]
        times = self.run_transfers(net, jobs)
        assert len(times) == 4  # all completed

    def test_invalid_endpoint_rejected(self):
        net = mk(4)
        with pytest.raises(ConfigurationError):
            list(net.transfer(0, 9, 10))

    def test_negative_size_rejected(self):
        net = mk(4)
        with pytest.raises(ConfigurationError):
            list(net.transfer(0, 1, -1))

    def test_allocated_links_grow_lazily(self):
        net = mk(16)
        assert net.allocated_links == 0
        self.run_transfers(net, [(0, 1, 10)])
        assert net.allocated_links == 1
