"""Tests for traffic accounting, recv truncation, and latency percentiles."""

import numpy as np
import pytest

from repro.errors import TruncationError
from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineExecutor
from repro.core.pipeline import NodeAssignment, build_embedded_pipeline
from repro.machine.presets import paragon
from repro.mpi.communicator import Communicator
from repro.stap.costs import STAPCosts


class TestRecvTruncation:
    def test_oversized_message_raises(self, ideal_machine):
        comm = Communicator.world(ideal_machine)
        outcome = {}

        def sender(rc):
            yield from rc.send(np.zeros(1000, np.float64), dest=1, tag=0)

        def receiver(rc):
            try:
                yield from rc.recv(source=0, tag=0, max_bytes=100)
            except TruncationError as e:
                outcome["err"] = str(e)

        k = comm.kernel
        k.process(sender(comm.view(0)))
        k.process(receiver(comm.view(1)))
        k.run()
        assert "8000 bytes" in outcome["err"]

    def test_fitting_message_passes(self, ideal_machine):
        comm = Communicator.world(ideal_machine)
        got = {}

        def sender(rc):
            yield from rc.send(b"abc", dest=1, tag=0)

        def receiver(rc):
            got["v"] = yield from rc.recv(source=0, tag=0, max_bytes=3)

        k = comm.kernel
        k.process(sender(comm.view(0)))
        k.process(receiver(comm.view(1)))
        k.run()
        assert got["v"] == b"abc"


class TestTrafficAccounting:
    def test_comm_counts_messages_and_bytes(self, ideal_machine):
        comm = Communicator.world(ideal_machine)

        def sender(rc):
            yield from rc.send(np.zeros(100, np.float64), dest=2, tag=0)
            yield from rc.send(np.zeros(50, np.float64), dest=2, tag=0)

        def receiver(rc):
            yield from rc.recv(source=0, tag=0)
            yield from rc.recv(source=0, tag=0)

        k = comm.kernel
        k.process(sender(comm.view(0)))
        k.process(receiver(comm.view(2)))
        k.run()
        assert comm.traffic[(0, 2)] == [2, 1200]

    @pytest.fixture
    def result(self, small_params):
        a = NodeAssignment.balanced(small_params, 20)
        return PipelineExecutor(
            build_embedded_pipeline(a), small_params, paragon(),
            FSConfig("pfs", 8), ExecutionConfig(n_cpis=4, warmup=1),
        ).run()

    def test_task_traffic_structure(self, result):
        tt = result.task_traffic()
        # The pipeline's spatial edges all carry traffic...
        for edge in [
            ("doppler", "easy_bf"), ("doppler", "hard_bf"),
            ("doppler", "easy_weight"), ("doppler", "hard_weight"),
            ("easy_weight", "easy_bf"), ("hard_weight", "hard_bf"),
            ("easy_bf", "pulse_compr"), ("hard_bf", "pulse_compr"),
            ("pulse_compr", "cfar"),
        ]:
            assert edge in tt and tt[edge][0] > 0, edge
        # ...and acks flow backwards along them.
        assert ("cfar", "pulse_compr") in tt

    def test_data_volumes_match_cost_model(self, result, small_params):
        """Doppler -> BF bytes equal the cost model's stream size times
        the CPI count (acks are tiny and flow the other way)."""
        costs = STAPCosts(small_params)
        tt = result.task_traffic()
        n_cpis = result.cfg.n_cpis
        assert tt[("doppler", "easy_bf")][1] == costs.doppler_easy_bytes() * n_cpis
        assert tt[("doppler", "hard_bf")][1] == costs.doppler_hard_bytes() * n_cpis
        assert tt[("pulse_compr", "cfar")][1] == costs.beams_all_bytes() * n_cpis

    def test_no_traffic_between_unrelated_tasks(self, result):
        tt = result.task_traffic()
        assert ("easy_weight", "hard_weight") not in tt
        assert ("cfar", "doppler") not in tt


class TestLatencyPercentiles:
    def test_percentiles_from_run(self, small_params):
        a = NodeAssignment.balanced(small_params, 20)
        res = PipelineExecutor(
            build_embedded_pipeline(a), small_params, paragon(),
            FSConfig("pfs", 8), ExecutionConfig(n_cpis=8, warmup=2),
        ).run()
        m = res.measurement
        assert len(m.latencies) == 6  # steady CPIs
        p0, p50, p100 = (m.latency_percentile(q) for q in (0, 50, 100))
        assert p0 <= p50 <= p100
        assert p0 <= m.latency <= p100

    def test_percentile_validation(self):
        from repro.core.metrics import PipelineMeasurement

        m = PipelineMeasurement({}, 1.0, 1.0, 1.0, 1.0, latencies=[1.0, 2.0])
        with pytest.raises(ValueError):
            m.latency_percentile(120)

    def test_percentile_empty_falls_back_to_mean(self):
        from repro.core.metrics import PipelineMeasurement

        m = PipelineMeasurement({}, 1.0, 3.5, 1.0, 1.0)
        assert m.latency_percentile(95) == 3.5
