"""Tests for the analytic model — the paper's equations 5-15."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, PipelineError
from repro.core.model import CombinationAnalysis, IOModel, PipelineModel
from repro.core.pipeline import (
    NodeAssignment,
    build_embedded_pipeline,
    build_separate_io_pipeline,
)
from repro.machine.presets import paragon
from repro.stap.params import STAPParams

positive = st.floats(min_value=1e-6, max_value=1e3, allow_nan=False)
nodes = st.integers(min_value=1, max_value=64)


class TestCombinationAnalysis:
    def test_eq6_task_times(self):
        ca = CombinationAnalysis(w_a=10, w_b=2, p_a=5, p_b=1, c_a=0.1, c_b=0.05)
        assert ca.t_a == pytest.approx(10 / 5 + 0.1)
        assert ca.t_b == pytest.approx(2 / 1 + 0.05)

    def test_eq9_work_term_strictly_negative(self):
        ca = CombinationAnalysis(w_a=10, w_b=2, p_a=5, p_b=1, c_a=0, c_b=0)
        assert ca.work_term_delta() < 0

    @given(positive, positive, nodes, nodes)
    @settings(max_examples=120, deadline=None)
    def test_eq9_holds_for_all_inputs(self, wa, wb, pa, pb):
        """(W_a+W_b)/(P_a+P_b) < W_a/P_a + W_b/P_b whenever work exists."""
        ca = CombinationAnalysis(w_a=wa, w_b=wb, p_a=pa, p_b=pb, c_a=0, c_b=0)
        assert ca.work_term_delta() < 0

    @given(positive, positive, nodes, nodes, positive, positive)
    @settings(max_examples=120, deadline=None)
    def test_eq12_latency_always_improves_when_comm_shrinks(
        self, wa, wb, pa, pb, ca_, cb
    ):
        """With C_{a+b} <= C_a (the paper's Eq. 10) and V negligible,
        T_{a+b} < T_a + T_b — Eq. 11/12."""
        ca = CombinationAnalysis(w_a=wa, w_b=wb, p_a=pa, p_b=pb, c_a=ca_, c_b=cb)
        assert ca._c_comb <= ca_ + 1e-12
        assert ca.latency_improves()

    @given(positive, positive, nodes, nodes, positive, positive)
    @settings(max_examples=120, deadline=None)
    def test_eq13_combined_below_weighted_average(self, wa, wb, pa, pb, ca_, cb):
        """T_{a+b} <= (P_a T_a + P_b T_b)/(P_a+P_b) <= max(T_a, T_b)."""
        ca = CombinationAnalysis(
            w_a=wa, w_b=wb, p_a=pa, p_b=pb, c_a=ca_, c_b=cb,
            c_combined=0.0, v_combined=0.0,
        )
        bound = ca.combined_time_bound()
        assert ca.t_combined <= bound + 1e-9
        assert bound <= max(ca.t_a, ca.t_b) + 1e-9

    def test_eq14_throughput_non_decreasing(self):
        ca = CombinationAnalysis(w_a=10, w_b=2, p_a=2, p_b=1, c_a=0.01, c_b=0.01)
        others = {"doppler": 6.0, "bf": 5.5}
        assert ca.throughput_non_decreasing(others)

    def test_eq15_both_improve_when_combined_was_bottleneck(self):
        # PC on 1 node is the clear bottleneck.
        ca = CombinationAnalysis(w_a=10, w_b=1, p_a=1, p_b=1, c_a=0.01, c_b=0.01)
        others = {"doppler": 2.0}
        assert ca.both_improve(others)

    def test_both_improve_false_when_not_bottleneck(self):
        ca = CombinationAnalysis(w_a=1, w_b=1, p_a=2, p_b=2, c_a=0.0, c_b=0.0)
        others = {"doppler": 50.0}
        assert not ca.both_improve(others)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            CombinationAnalysis(w_a=1, w_b=1, p_a=0, p_b=1, c_a=0, c_b=0)
        with pytest.raises(ConfigurationError):
            CombinationAnalysis(w_a=-1, w_b=1, p_a=1, p_b=1, c_a=0, c_b=0)


class TestIOModel:
    def test_more_stripes_is_faster(self):
        kw = dict(stripe_unit=64 * 1024, disk_bw=5.5e6, disk_overhead=0.02, asynchronous=True)
        t16 = IOModel(stripe_factor=16, **kw).cycle_time(24, 16 * 2**20)
        t64 = IOModel(stripe_factor=64, **kw).cycle_time(24, 16 * 2**20)
        assert t64 < t16 / 2

    def test_more_readers_costs_more_overhead(self):
        io = IOModel(16, 64 * 1024, 5.5e6, 0.02, True)
        assert io.cycle_time(24, 16 * 2**20) > io.cycle_time(6, 16 * 2**20)

    def test_invalid_args(self):
        io = IOModel(16, 1024, 1e6, 0.01, True)
        with pytest.raises(ConfigurationError):
            io.cycle_time(0, 100)


class TestPipelineModel:
    @pytest.fixture
    def model(self):
        params = STAPParams()
        spec = build_embedded_pipeline(NodeAssignment.case(1, params))
        io = IOModel(64, 64 * 1024, 5.5e6, 0.02, asynchronous=True)
        return PipelineModel(spec, params, paragon(), io)

    def test_all_times_positive(self, model):
        assert all(t > 0 for t in model.predicted_times().values())

    def test_predictions_are_balanced(self, model):
        times = model.predicted_times()
        assert max(times.values()) / min(times.values()) < 4

    def test_throughput_latency_consistent(self, model):
        thr = model.predicted_throughput()
        times = model.predicted_times()
        assert thr == pytest.approx(1.0 / max(times.values()))
        assert model.predicted_latency() >= max(times.values())

    def test_io_pipeline_requires_io_model(self):
        params = STAPParams()
        spec = build_embedded_pipeline(NodeAssignment.case(1, params))
        with pytest.raises(PipelineError):
            PipelineModel(spec, params, paragon(), io_model=None)

    def test_sync_io_slower_than_async(self):
        params = STAPParams()
        spec = build_embedded_pipeline(NodeAssignment.case(3, params))
        io_async = IOModel(16, 64 * 1024, 5.5e6, 0.02, asynchronous=True)
        io_sync = IOModel(16, 64 * 1024, 5.5e6, 0.02, asynchronous=False)
        t_async = PipelineModel(spec, params, paragon(), io_async).task_time("doppler")
        t_sync = PipelineModel(spec, params, paragon(), io_sync).task_time("doppler")
        assert t_sync > t_async

    def test_separate_read_task_time_includes_io(self):
        params = STAPParams()
        spec = build_separate_io_pipeline(NodeAssignment.case(1, params))
        io = IOModel(16, 64 * 1024, 5.5e6, 0.02, asynchronous=True)
        m = PipelineModel(spec, params, paragon(), io)
        assert m.task_time("read") > io.cycle_time(
            spec.task("read").n_nodes, params.cube_nbytes
        ) * 0.9

    def test_model_predicts_stripe16_bottleneck_at_case3(self):
        """The model itself reproduces the paper's headline effect."""
        params = STAPParams()
        spec = build_embedded_pipeline(NodeAssignment.case(3, params))
        t16 = PipelineModel(
            spec, params, paragon(), IOModel(16, 64 * 1024, 5.5e6, 0.02, True)
        )
        t64 = PipelineModel(
            spec, params, paragon(), IOModel(64, 64 * 1024, 5.5e6, 0.02, True)
        )
        assert t16.predicted_throughput() < 0.8 * t64.predicted_throughput()
