"""Property-based fuzzing of whole pipeline runs.

Hypothesis generates random (but legal) STAP dimensions and node
assignments; every generated configuration must plan coherently, run to
completion in timing mode, trace every CPI for every task, and satisfy
the structural invariants (positive metrics, Eq. 1/2 relationships,
detections empty in timing mode).  This is the harness most likely to
find partition/routing corner cases the hand-written tests missed.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineExecutor
from repro.core.pipeline import (
    NodeAssignment,
    build_embedded_pipeline,
    build_separate_io_pipeline,
    combine_pulse_cfar,
)
from repro.core.plan import PipelinePlan
from repro.core.validate import validate_plan
from repro.machine.presets import generic_cluster
from repro.stap.params import STAPParams


@st.composite
def stap_params(draw):
    n_channels = draw(st.sampled_from([2, 4, 8]))
    n_pulses = draw(st.sampled_from([8, 16, 32]))
    n_hard = draw(st.integers(1, n_pulses - 1))
    n_ranges = draw(st.sampled_from([64, 96, 128]))
    n_training = draw(st.integers(2 * n_channels, min(n_ranges, 4 * n_channels + 8)))
    return STAPParams(
        n_channels=n_channels,
        n_pulses=n_pulses,
        n_ranges=n_ranges,
        n_beams=draw(st.integers(1, 4)),
        n_hard_bins=n_hard,
        n_training=n_training,
        pulse_len=draw(st.integers(1, 8)),
        cfar_window=4,
        cfar_guard=1,
    )


@st.composite
def assignments(draw):
    return NodeAssignment(
        doppler=draw(st.integers(1, 6)),
        easy_weight=draw(st.integers(1, 3)),
        hard_weight=draw(st.integers(1, 3)),
        easy_bf=draw(st.integers(1, 4)),
        hard_bf=draw(st.integers(1, 4)),
        pulse_compr=draw(st.integers(1, 4)),
        cfar=draw(st.integers(1, 3)),
        io_nodes=draw(st.integers(1, 4)),
    )


BUILDERS = (
    build_embedded_pipeline,
    build_separate_io_pipeline,
    lambda a: combine_pulse_cfar(build_embedded_pipeline(a)),
)


class TestPlanFuzz:
    @given(stap_params(), assignments(), st.integers(0, 2))
    @settings(max_examples=120, deadline=None)
    def test_every_legal_config_plans_coherently(self, params, assignment, b):
        spec = BUILDERS[b](assignment)
        validate_plan(PipelinePlan(spec, params))


class TestRunFuzz:
    @given(stap_params(), assignments(), st.integers(0, 2))
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_every_legal_config_runs(self, params, assignment, b):
        spec = BUILDERS[b](assignment)
        cfg = ExecutionConfig(n_cpis=3, warmup=1)
        res = PipelineExecutor(
            spec, params, generic_cluster(), FSConfig("pfs", 2), cfg
        ).run()
        assert res.throughput > 0 and res.latency > 0
        # Every task traced every CPI.
        for t in spec.task_names():
            assert res.trace.cpis(t) == [0, 1, 2]
        # Timing mode produces no detections.
        assert res.detections == []
        # Eq. 2: journey latency is at least the sum of the critical
        # path's compute phases.
        m = res.measurement
        stages = spec.graph.latency_path_tasks()
        path_compute = sum(
            max(m.task_stats[n].compute for n in stage) for stage in stages
        )
        assert res.latency >= path_compute * 0.999


class TestComputeModeFuzz:
    """The strongest invariant in the repo, fuzzed: for random legal
    dimensions and assignments, the distributed pipeline's detections
    equal the serial chain's exactly."""

    @given(
        stap_params(),
        assignments(),
        st.integers(0, 2),
        st.integers(0, 10_000),
    )
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_detections_equal_serial_chain(self, params, assignment, b, seed):
        from repro.stap.chain import run_cpi_stream
        from repro.stap.scenario import Scenario, Target, make_cube

        # A detectable target placed safely inside the range extent, in
        # a pseudo-random bin derived from the seed.
        bin_choice = params.easy_bins[seed % params.n_easy_bins]
        doppler = ((bin_choice / params.n_pulses) + 0.5) % 1.0 - 0.5
        scenario = Scenario(
            targets=(
                Target(
                    range_gate=params.n_ranges // 2,
                    doppler=doppler,
                    angle=0.2,
                    snr_db=0.0,
                ),
            ),
            jammers=(),
            cnr_db=15.0,
            seed=seed,
        )
        n_cpis = 3
        cubes = [make_cube(params, scenario, k) for k in range(n_cpis)]
        serial = sorted(
            d for r in run_cpi_stream(cubes, params) for d in r.detections
        )
        spec = BUILDERS[b](assignment)
        res = PipelineExecutor(
            spec,
            params,
            generic_cluster(),
            FSConfig("pfs", 2),
            ExecutionConfig(n_cpis=n_cpis, warmup=1, compute=True),
            scenario=scenario,
        ).run()
        got = [
            (d.cpi_index, d.doppler_bin, d.beam, d.range_gate)
            for d in sorted(res.detections)
        ]
        want = [
            (d.cpi_index, d.doppler_bin, d.beam, d.range_gate) for d in serial
        ]
        assert got == want
