"""Tests for the I/O strategy layer: registry, readers, validation.

The migration pins below are the contract of the refactor — the four
legacy access methods moved onto the strategy/reader seam must stay
*bit-identical*, down to the full serialized result hash, on both the
async (PFS) and sync-fallback (PIOFS) paths.
"""

import hashlib
import json

import pytest

from repro.bench.engine import (
    LEGACY_STRATEGY,
    PIPELINES,
    ExperimentSpec,
    run_spec,
)
from repro.core.context import ExecutionConfig, TaskContext
from repro.core.executor import FSConfig, PipelineExecutor
from repro.core.graph import DependencyKind, Edge
from repro.core.pipeline import (
    NodeAssignment,
    PipelineSpec,
    build_embedded_pipeline,
    build_separate_io_pipeline,
    combine_pulse_cfar,
)
from repro.core.task import TaskKind, TaskSpec
from repro.errors import ConfigurationError, PipelineError
from repro.machine.presets import paragon
from repro.strategies import (
    AsyncPrefetchReader,
    IOStrategy,
    SyncReader,
    get_strategy,
    make_adaptive_reader,
    register,
    strategy_for_spec,
    strategy_names,
)
from repro.strategies.readers import DROPPED

FAST = ExecutionConfig(n_cpis=4, warmup=1)

#: Full-result hashes captured on the pre-refactor reader (the old
#: ``_SlabReader``), spec: balanced small_params on 14 nodes, paragon,
#: stripe factor 8, 4 CPIs / 1 warmup, seed 0.  PIOFS rows exercise the
#: SyncReader fallback; PFS rows the AsyncPrefetchReader path.
PRE_REFACTOR_HASHES = {
    ("embedded", "piofs"):
        "68e2bfe2f2fd25796cb2cccead890d34e5d88ead62492e37279bae9ae83f89df",
    ("embedded", "pfs"):
        "8184ef29248c3ed2a7b93cdcca6976f9c80991a1fe78ec5eb1d593d3b6be8f15",
    ("separate", "piofs"):
        "1e9e5bfb30c26415def499be5439708be784f8f83d2f5b3983924a4eba390d71",
    ("separate", "pfs"):
        "ea56a0c67c40bec676c6dae2e16931265e754961e65cee3ed8c5121834c0acb6",
    ("combined", "pfs"):
        "ede32c517787e6f1b140c9fbee0f0318a71d66a2a298e15bc75286d59f7802b8",
}


def small_spec(small_params, **kw):
    kw.setdefault("assignment", NodeAssignment.balanced(small_params, 14))
    kw.setdefault("machine", "paragon")
    kw.setdefault("fs", FSConfig("pfs", 8))
    kw.setdefault("params", small_params)
    kw.setdefault("cfg", FAST)
    kw.setdefault("seed", 0)
    return ExperimentSpec(**kw)


def result_hash(result) -> str:
    return hashlib.sha256(
        json.dumps(result.to_dict(), sort_keys=True).encode("utf-8")
    ).hexdigest()


class TestRegistry:
    def test_at_least_five_strategies(self):
        names = strategy_names()
        assert len(names) >= 5
        for expected in ("embedded-io", "separate-io", "embedded-io+combined",
                         "separate-io+combined", "collective-two-phase",
                         "data-sieving", "embedded-prefetch2"):
            assert expected in names

    def test_names_sorted_and_labels_stable(self):
        names = strategy_names()
        assert names == sorted(names)
        for name in names:
            s = get_strategy(name)
            assert s.label() == name
            assert s.describe()  # every strategy documents itself

    def test_unknown_name_rejected_with_choices(self):
        with pytest.raises(ConfigurationError, match="embedded-io"):
            get_strategy("no-such-strategy")

    def test_spec_name_resolution(self):
        assert strategy_for_spec("embedded-io").name == "embedded-io"
        assert strategy_for_spec("my-custom-pipeline") is None

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            @register
            class Clash(IOStrategy):
                name = "embedded-io"

    def test_unnamed_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="no name"):
            @register
            class Anonymous(IOStrategy):
                pass


class TestSpecConstruction:
    """Strategy build_spec reproduces the legacy builders exactly."""

    LEGACY = {
        "embedded-io": build_embedded_pipeline,
        "separate-io": build_separate_io_pipeline,
        "embedded-io+combined":
            lambda a: combine_pulse_cfar(build_embedded_pipeline(a)),
        "separate-io+combined":
            lambda a: combine_pulse_cfar(build_separate_io_pipeline(a)),
    }

    @pytest.mark.parametrize("name", sorted(LEGACY))
    def test_build_spec_matches_legacy_builder(self, name, small_params):
        a = NodeAssignment.balanced(small_params, 14)
        assert (get_strategy(name).build_spec(a).to_dict()
                == self.LEGACY[name](a).to_dict())

    def test_engine_pipelines_include_registry(self):
        for name in strategy_names():
            assert name in PIPELINES

    def test_legacy_aliases_and_strategy_property(self, small_params):
        for legacy, strategy in LEGACY_STRATEGY.items():
            spec = small_spec(small_params, pipeline=legacy)
            assert spec.strategy == strategy
        spec = small_spec(small_params, pipeline="data-sieving")
        assert spec.strategy == "data-sieving"


class TestValidation:
    def test_async_strategy_rejected_on_piofs_at_build_time(self, small_params):
        a = NodeAssignment.balanced(small_params, 14)
        spec = PIPELINES["embedded-prefetch2"](a)
        with pytest.raises(PipelineError, match="asynchronous"):
            PipelineExecutor(spec, small_params, paragon(),
                             FSConfig("piofs", 8), FAST)

    def test_two_phase_rejects_read_deadline(self, small_params):
        a = NodeAssignment.balanced(small_params, 14)
        spec = PIPELINES["collective-two-phase"](a)
        with pytest.raises(PipelineError, match="read_deadline"):
            PipelineExecutor(
                spec, small_params, paragon(), FSConfig("pfs", 8),
                ExecutionConfig(n_cpis=4, warmup=1, read_deadline=0.5),
            )

    def test_engine_surfaces_validation_errors(self, small_params):
        spec = small_spec(small_params, pipeline="embedded-prefetch2",
                          fs=FSConfig("piofs", 8))
        with pytest.raises(PipelineError, match="embedded-prefetch2"):
            run_spec(spec)


class TestMigrationPins:
    """The refactor is bit-identical to the pre-refactor reader."""

    @pytest.mark.parametrize(
        "pipeline,fs_kind", sorted(PRE_REFACTOR_HASHES))
    def test_pre_refactor_result_hash(self, pipeline, fs_kind, small_params):
        spec = small_spec(small_params, pipeline=pipeline,
                          fs=FSConfig(fs_kind, 8))
        assert (result_hash(run_spec(spec))
                == PRE_REFACTOR_HASHES[(pipeline, fs_kind)])

    def test_registry_names_alias_legacy_results(self, small_params):
        """'embedded-io' differs from 'embedded' only by spec name."""
        legacy = run_spec(small_spec(small_params, pipeline="embedded"))
        new = run_spec(small_spec(small_params, pipeline="embedded-io"))
        assert new.throughput == legacy.throughput
        assert new.latency == legacy.latency


class TestNewStrategies:
    @pytest.mark.parametrize(
        "pipeline", ["collective-two-phase", "data-sieving"])
    @pytest.mark.parametrize("fs_kind", ["pfs", "piofs"])
    def test_runs_end_to_end_and_deterministic(
            self, pipeline, fs_kind, small_params):
        spec = small_spec(small_params, pipeline=pipeline,
                          fs=FSConfig(fs_kind, 8))
        first = run_spec(spec)
        assert first.throughput > 0
        assert result_hash(run_spec(spec)) == result_hash(first)

    def test_compute_mode_detections_identical_across_strategies(
            self, small_params):
        cfg = ExecutionConfig(n_cpis=3, warmup=1, compute=True)
        reference = None
        for pipeline in ("embedded", "data-sieving", "collective-two-phase"):
            spec = small_spec(small_params, pipeline=pipeline, cfg=cfg, seed=7)
            dets = [d.to_dict() for d in run_spec(spec).detections]
            if reference is None:
                reference = dets
                assert reference  # scenario must actually yield targets
            else:
                assert dets == reference

    def test_sieving_reads_more_bytes_for_same_cube(self, small_params):
        base = run_spec(small_spec(small_params, pipeline="embedded-io"))
        sieve = run_spec(small_spec(small_params, pipeline="data-sieving"))
        two_phase = run_spec(
            small_spec(small_params, pipeline="collective-two-phase"))
        assert (sieve.disk_stats["bytes_served"]
                > base.disk_stats["bytes_served"])
        assert (two_phase.disk_stats["bytes_served"]
                == base.disk_stats["bytes_served"])

    def test_prefetch2_runs_on_pfs(self, small_params):
        result = run_spec(small_spec(small_params,
                                     pipeline="embedded-prefetch2"))
        assert result.throughput > 0


class TestReaderDrain:
    """close() leaves no orphaned PFS requests behind (leak regression)."""

    def _executor(self, small_params, fs_kind="pfs", cfg=FAST):
        spec = PIPELINES["embedded-io"](
            NodeAssignment.balanced(small_params, 14))
        return PipelineExecutor(spec, small_params, paragon(),
                                FSConfig(fs_kind, 8), cfg)

    def _context(self, ex):
        inst = ex.plan.instances["doppler"]
        return TaskContext(
            kernel=ex.kernel, rc=ex.comm.view(inst.ranks[0]), task=inst,
            local=0, plan=ex.plan, cfg=ex.cfg, trace=ex.trace,
            fileset=ex.fileset, node_spec=ex.machine.node(inst.ranks[0]).spec,
            results=ex.results, strategy=ex.strategy,
        )

    def test_close_drains_outstanding_prefetch(self, small_params):
        ex = self._executor(small_params)
        ex.fileset.initialize()
        ctx = self._context(ex)
        rlo, rhi = ex.plan.ranges_doppler.bounds(0)
        seen = {}

        def driver():
            reader = make_adaptive_reader(ctx, rlo, rhi)
            assert isinstance(reader, AsyncPrefetchReader)
            reader.prefetch(0)
            seen["posted"] = reader.outstanding_requests()
            yield ctx.kernel.timeout(1e-9)  # iread still in flight
            reader.close()
            seen["after_close"] = reader.outstanding_requests()

        ex.kernel.process(driver(), name="driver")
        ex.kernel.run()  # no unobserved failures may surface
        assert seen == {"posted": 1, "after_close": 0}
        assert ex.results["cancelled_reads"] == [("doppler", 0, 0)]

    def test_close_drains_deadline_orphan_sync_reader(self, small_params):
        deadline_cfg = ExecutionConfig(n_cpis=4, warmup=1, read_deadline=1e-9)
        ex = self._executor(small_params, "piofs", deadline_cfg)
        ex.fileset.initialize()
        ctx = self._context(ex)
        rlo, rhi = ex.plan.ranges_doppler.bounds(0)
        seen = {}

        def driver():
            reader = make_adaptive_reader(ctx, rlo, rhi)
            assert isinstance(reader, SyncReader)
            out = yield from reader.read(0)
            assert out is DROPPED
            seen["orphans"] = reader.outstanding_requests()
            seen["procs"] = [ev for _cpi, ev in reader._inflight()]
            reader.close()
            seen["after_close"] = reader.outstanding_requests()

        ex.kernel.process(driver(), name="driver")
        ex.kernel.run()
        assert seen["orphans"] == 1
        assert seen["after_close"] == 0
        # The interrupt lands on the next kernel step; after the run the
        # orphaned deadline-read process must be gone.
        assert [p.is_alive for p in seen["procs"]] == [False]
        assert ex.results["cancelled_reads"] == [("doppler", 0, 0)]

    def test_deadline_drop_run_is_clean_and_deterministic(self, small_params):
        cfg = ExecutionConfig(n_cpis=4, warmup=1, read_deadline=1e-6)
        spec = small_spec(small_params, cfg=cfg,
                          fs=FSConfig("pfs", 1))  # one server: reads stall
        first = run_spec(spec)
        assert first.dropped_cpis  # the tiny deadline must actually trip
        assert result_hash(run_spec(spec)) == result_hash(first)


class TestCombineDedup:
    def test_fan_in_edges_collapse_to_one(self):
        """A task feeding both halves ends with one edge, order kept."""
        sd = DependencyKind.SPATIAL
        spec = PipelineSpec(
            tasks=[
                TaskSpec("doppler", TaskKind.DOPPLER_EMBEDDED_IO, 2),
                TaskSpec("pulse_compr", TaskKind.PULSE_COMPRESSION, 1),
                TaskSpec("cfar", TaskKind.CFAR, 1),
            ],
            edges=[
                Edge("doppler", "pulse_compr", sd),
                Edge("doppler", "cfar", sd),
                Edge("pulse_compr", "cfar", sd),
            ],
            name="fan-in",
        )
        combined = combine_pulse_cfar(spec)
        assert combined.edges == [Edge("doppler", "pc_cfar", sd)]

    def test_distinct_kinds_not_collapsed(self):
        sd, td = DependencyKind.SPATIAL, DependencyKind.TEMPORAL
        spec = PipelineSpec(
            tasks=[
                TaskSpec("doppler", TaskKind.DOPPLER_EMBEDDED_IO, 2),
                TaskSpec("pulse_compr", TaskKind.PULSE_COMPRESSION, 1),
                TaskSpec("cfar", TaskKind.CFAR, 1),
            ],
            edges=[
                Edge("doppler", "pulse_compr", sd),
                Edge("doppler", "cfar", td),
                Edge("pulse_compr", "cfar", sd),
            ],
            name="fan-in-kinds",
        )
        combined = combine_pulse_cfar(spec)
        assert combined.edges == [
            Edge("doppler", "pc_cfar", sd),
            Edge("doppler", "pc_cfar", td),
        ]

    def test_paper_pipelines_unchanged_by_dedup(self, small_params):
        a = NodeAssignment.balanced(small_params, 14)
        combined = combine_pulse_cfar(build_embedded_pipeline(a))
        # The paper graph has no duplicate-producing fan-in: 9 core edges
        # minus the merged-away pulse_compr->cfar edge.
        assert len(combined.edges) == 8
