"""Unit tests for the multistage (SP switch) network."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.multistage import MultistageNetwork
from repro.sim.kernel import Kernel


def run_transfers(net, jobs):
    k = net.kernel
    times = {}

    def mover(k, net, i, s, d, nb):
        yield from net.transfer(s, d, nb)
        times[i] = k.now

    for i, (s, d, nb) in enumerate(jobs):
        k.process(mover(k, net, i, s, d, nb))
    k.run()
    return times


def mk(n=8, latency=0.0, bw=1e6):
    return MultistageNetwork(Kernel(), n, latency, bw)


class TestMultistage:
    def test_single_transfer_alpha_beta(self):
        net = mk(latency=1e-3)
        t = run_transfers(net, [(0, 5, 1e6)])
        assert t[0] == pytest.approx(1e-3 + 1.0)

    def test_local_transfer(self):
        net = mk(latency=1e-3)
        t = run_transfers(net, [(3, 3, 1e9)])
        assert t[0] == pytest.approx(0.5e-3)

    def test_disjoint_pairs_overlap(self):
        net = mk()
        t = run_transfers(net, [(0, 1, 1e6), (2, 3, 1e6), (4, 5, 1e6)])
        assert all(v == pytest.approx(1.0) for v in t.values())

    def test_shared_destination_serialises(self):
        net = mk()
        t = run_transfers(net, [(0, 7, 1e6), (1, 7, 1e6), (2, 7, 1e6)])
        assert sorted(t.values()) == pytest.approx([1.0, 2.0, 3.0])

    def test_shared_source_serialises(self):
        net = mk()
        t = run_transfers(net, [(0, 5, 1e6), (0, 6, 1e6)])
        assert sorted(t.values()) == pytest.approx([1.0, 2.0])

    def test_bidirectional_pair_overlaps(self):
        net = mk()
        t = run_transfers(net, [(0, 1, 1e6), (1, 0, 1e6)])
        assert all(v == pytest.approx(1.0) for v in t.values())

    def test_no_deadlock_under_cross_traffic(self):
        net = mk()
        jobs = [(i, (i + 3) % 8, 1e5) for i in range(8)]
        t = run_transfers(net, jobs)
        assert len(t) == 8

    def test_invalid_node_count(self):
        with pytest.raises(ConfigurationError):
            MultistageNetwork(Kernel(), 0, 0.0, 1e6)

    def test_invalid_endpoint(self):
        with pytest.raises(ConfigurationError):
            list(mk().transfer(0, 99, 10))
