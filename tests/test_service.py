"""Tests for the experiment service tier (repro.service).

Covers the job/stage/task lifecycle model, the worker pools, the
scheduler's streaming / dedupe / cancellation / retry behavior, the
SweepRunner-on-scheduler equivalence guarantees, and the TCP front end.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.bench.engine import ExecutionConfig, ExperimentSpec, SweepRunner
from repro.bench.store import ResultStore
from repro.core.pipeline import NodeAssignment
from repro.errors import (
    ConfigurationError,
    JobCancelledError,
    ServiceError,
)
from repro.obs.service import ServiceMetrics
from repro.service import (
    ExperimentScheduler,
    State,
    TaskSpec,
)
from repro.service.model import Job, Lifecycle, Stage, Task
from repro.service.pool import InlinePool, ProcessPool, resolve_runner
from repro.service.server import ExperimentServer, request, submit_batch
from repro.service.testing import (
    FAILING_RUNNER,
    SLEEP_RUNNER,
    SLOW_FIRST_RUNNER,
)

FAST = ExecutionConfig(n_cpis=2, warmup=0)

#: Generous deadline for anything that involves process spawn.
DEADLINE = 60


def small_spec(small_params, **kw):
    kw.setdefault("assignment", NodeAssignment.balanced(small_params, 14))
    kw.setdefault("params", small_params)
    kw.setdefault("cfg", FAST)
    return ExperimentSpec(**kw)


def sleep_cell(key, tmp_path, duration=0.0, value=None):
    """A TaskSpec running the synthetic sleep runner."""
    return TaskSpec(
        key=key,
        payload={"id": key, "value": value if value is not None else key,
                 "duration": duration, "dir": str(tmp_path)},
        runner=SLEEP_RUNNER,
    )


def wait_until(predicate, timeout=DEADLINE, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ---------------------------------------------------------------------------
# lifecycle model
# ---------------------------------------------------------------------------
class TestLifecycle:
    def test_legal_path_and_listeners(self):
        lc = Lifecycle()
        seen = []
        lc.add_listener(lambda obj: seen.append(obj.state))
        assert lc.signal(State.RUNNING)
        assert lc.signal(State.DONE)
        assert seen == [State.RUNNING, State.DONE]

    def test_terminal_states_sticky(self):
        lc = Lifecycle()
        lc.signal(State.CANCELLED)
        assert not lc.signal(State.RUNNING)
        assert lc.state is State.CANCELLED

    def test_same_state_signal_is_noop(self):
        lc = Lifecycle()
        assert not lc.signal(State.PENDING)
        assert lc.state is State.PENDING

    def test_reschedule_path_running_to_pending(self):
        lc = Lifecycle()
        lc.signal(State.RUNNING)
        assert lc.signal(State.PENDING)

    def test_stage_settled_tracks_tasks_and_subscriptions(self):
        job = Job("c", 2)
        stage = Stage(job, 0)
        task = Task(TaskSpec(key="k", payload={}, runner="x:y"), stage)
        stage.tasks.append(task)
        assert not stage.settled
        task.signal(State.RUNNING)
        task.signal(State.DONE)
        assert stage.settled
        stage.pending_keys["other"] = 1
        assert not stage.settled

    def test_job_describe_shape(self):
        job = Job("cli", 3, label="sweep")
        assert job.describe()["client"] == "cli"
        assert job.describe()["counters"]["executed"] == 0


# ---------------------------------------------------------------------------
# pools
# ---------------------------------------------------------------------------
class TestResolveRunner:
    def test_resolves_import_string(self):
        fn = resolve_runner("repro.service.testing:failing_payload")
        with pytest.raises(ValueError):
            fn({})

    @pytest.mark.parametrize("bad", ["nocolon", ":fn", "mod:", "repro:nope"])
    def test_rejects_bad_names(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_runner(bad)


class TestInlinePool:
    def test_done_and_error_events(self, tmp_path):
        pool = InlinePool()
        pool.submit("t1", SLEEP_RUNNER, {"id": "a", "value": 1,
                                         "dir": str(tmp_path)})
        (ev,) = pool.poll()
        assert ev.kind == "done" and ev.result["value"] == 1
        pool.submit("t2", FAILING_RUNNER, {"message": "boom"})
        (ev,) = pool.poll()
        assert ev.kind == "error" and "boom" in str(ev.error)


class TestProcessPool:
    def test_runs_in_other_process_and_reuses_workers(self, tmp_path):
        pool = ProcessPool(1)
        try:
            pids = set()
            for i in range(3):
                pool.submit(f"t{i}", SLEEP_RUNNER,
                            {"id": str(i), "value": i, "dir": str(tmp_path)})
                events = []
                assert wait_until(
                    lambda: events.extend(pool.poll(timeout=0.2)) or events
                )
                assert events[0].kind == "done"
                pids.add(events[0].result["pid"])
            assert len(pids) == 1           # persistent, not respawned
            assert pids != {os.getpid()}    # and genuinely out-of-process
        finally:
            pool.shutdown()

    def test_death_reports_orphan_and_respawns(self, tmp_path):
        pool = ProcessPool(1)
        try:
            pool.submit("t1", SLEEP_RUNNER,
                        {"id": "a", "duration": 30, "dir": str(tmp_path)})
            assert wait_until(lambda: (tmp_path / "started-a").exists())
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            events = []
            assert wait_until(
                lambda: events.extend(pool.poll(timeout=0.2)) or events
            )
            assert events[0].kind == "died" and events[0].task_id == "t1"
            assert pool.respawns == 1
            assert len(pool.worker_pids()) == 1  # replacement is up
        finally:
            pool.shutdown()

    def test_shutdown_stops_workers(self):
        pool = ProcessPool(2)
        pids = pool.worker_pids()
        pool.shutdown()
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_size_validated(self):
        with pytest.raises(ConfigurationError):
            ProcessPool(0)


# ---------------------------------------------------------------------------
# scheduler core
# ---------------------------------------------------------------------------
class TestSchedulerBasics:
    def test_inline_job_completes_in_order_index(self, tmp_path):
        with ExperimentScheduler(workers=0) as s:
            cells = [sleep_cell(f"k{i}", tmp_path, value=i) for i in range(4)]
            h = s.submit_stages([("sleep", cells)], client="a")
            out = h.wait(timeout=DEADLINE)
            assert [r["value"] for r in out] == [0, 1, 2, 3]
            assert h.state is State.DONE
            assert h.counters["executed"] == 4

    def test_streaming_iterator_sources_and_indices(self, tmp_path):
        with ExperimentScheduler(workers=0) as s:
            cells = [sleep_cell(f"k{i}", tmp_path) for i in range(3)]
            h = s.submit_stages([("sleep", cells)], client="a")
            got = list(h.results(timeout=DEADLINE))
            assert {c.index for c in got} == {0, 1, 2}
            assert all(c.source == "executed" for c in got)

    def test_intra_job_duplicates_alias_single_execution(self, tmp_path):
        with ExperimentScheduler(workers=0) as s:
            cell = sleep_cell("dup", tmp_path, value=7)
            h = s.submit_stages([("sleep", [cell, cell, cell])], client="a")
            out = h.wait(timeout=DEADLINE)
            assert len(out) == 3
            assert out[0] is out[1] is out[2]
            assert h.counters["executed"] == 1
            assert h.counters["cache_misses"] == 1

    def test_multi_stage_sequencing(self, tmp_path):
        with ExperimentScheduler(workers=0) as s:
            first = [sleep_cell("s0", tmp_path, value="first")]
            second = [sleep_cell("s1", tmp_path, value="second")]
            h = s.submit_stages([("a", first), ("b", second)], client="c")
            got = list(h.results(timeout=DEADLINE))
            assert [c.payload["value"] for c in got] == ["first", "second"]
            assert [c.stage for c in got] == [0, 1]

    def test_task_failure_fails_job_with_original_error(self, tmp_path):
        with ExperimentScheduler(workers=0) as s:
            bad = TaskSpec(key="bad", payload={"message": "synthetic"},
                           runner=FAILING_RUNNER)
            h = s.submit_stages([("x", [bad])], client="a")
            with pytest.raises(ValueError, match="synthetic"):
                h.wait(timeout=DEADLINE)
            assert h.state is State.FAILED

    def test_empty_job_rejected(self):
        with ExperimentScheduler(workers=0) as s:
            with pytest.raises(ConfigurationError):
                s.submit_stages([], client="a")

    def test_submit_after_shutdown_rejected(self):
        s = ExperimentScheduler(workers=0)
        s.shutdown()
        with pytest.raises(ServiceError):
            s.submit_stages([("x", [TaskSpec("k", {}, "m:f")])])

    def test_jobs_listing(self, tmp_path):
        with ExperimentScheduler(workers=0) as s:
            h = s.submit_stages(
                [("sleep", [sleep_cell("k", tmp_path)])], client="me",
                label="demo",
            )
            h.wait(timeout=DEADLINE)
            jobs = s.jobs()
            mine = [j for j in jobs if j["id"] == h.id]
            assert mine and mine[0]["label"] == "demo"
            assert s.job(h.id)["state"] == "done"
            assert s.job("j999999") is None

    def test_results_replay_after_stream_drained(self, tmp_path):
        # A second results()/wait() call after the terminal event was
        # consumed must return immediately, not block on the empty queue.
        with ExperimentScheduler(workers=0) as s:
            h = s.submit_stages(
                [("sleep", [sleep_cell("k", tmp_path, value=3)])], client="a"
            )
            first = h.wait(timeout=DEADLINE)
            again = h.wait(timeout=1)
            assert again == first
            assert list(h.results(timeout=1)) == []

    def test_terminal_error_replays_after_drained(self, tmp_path):
        with ExperimentScheduler(workers=0) as s:
            bad = TaskSpec(key="bad", payload={"message": "synthetic"},
                           runner=FAILING_RUNNER)
            h = s.submit_stages([("x", [bad])], client="a")
            with pytest.raises(ValueError, match="synthetic"):
                h.wait(timeout=DEADLINE)
            with pytest.raises(ValueError, match="synthetic"):
                h.wait(timeout=1)


class TestJobRetention:
    def test_terminal_jobs_evicted_to_snapshots(self, tmp_path):
        with ExperimentScheduler(workers=0, job_retention=2) as s:
            handles = []
            for i in range(4):
                h = s.submit_stages(
                    [("x", [sleep_cell(f"r{i}", tmp_path, value=i)])],
                    client="a",
                )
                h.wait(timeout=DEADLINE)
                handles.append(h)
            oldest = handles[0]
            # Evicted: the scheduler dropped its own references...
            assert s.handle(oldest.id) is None
            assert oldest.id not in s._jobs
            # ...but `repro jobs list|show` still see the snapshot...
            assert s.job(oldest.id)["state"] == "done"
            assert [j["id"] for j in s.jobs()] == [h.id for h in handles]
            # ...and the newest jobs stay fully resident.
            assert s.handle(handles[-1].id) is handles[-1]
            # A client still holding the evicted handle keeps it usable.
            assert oldest.wait(timeout=1)[0]["value"] == 0

    def test_cancel_evicted_job_is_false(self, tmp_path):
        with ExperimentScheduler(workers=0, job_retention=0) as s:
            h = s.submit_stages(
                [("x", [sleep_cell("k", tmp_path)])], client="a"
            )
            h.wait(timeout=DEADLINE)
            assert not s.cancel(h.id)

    def test_retention_validated(self):
        with pytest.raises(ConfigurationError):
            ExperimentScheduler(workers=0, job_retention=-1)


class TestSchedulerWithStore:
    def test_cache_hit_streams_instantly(self, small_params, tmp_path):
        store = ResultStore(tmp_path / "cache")
        spec = small_spec(small_params)
        with ExperimentScheduler(workers=0, store=store) as s:
            first = s.submit([spec], client="a").wait(timeout=DEADLINE)
            h = s.submit([spec], client="a")
            cells = list(h.results(timeout=DEADLINE))
            assert cells[0].source == "cache"
            assert cells[0].payload == first[0]
            assert h.counters == {"cache_hits": 1, "cache_misses": 0,
                                  "executed": 0, "deduped": 0, "retries": 0,
                                  "predicted": 0}

    def test_inflight_dedupe_across_clients(self, tmp_path):
        # One busy worker: client A's cell is still executing when
        # client B submits the same key — B must subscribe, not re-run.
        with ExperimentScheduler(workers=1) as s:
            cell = sleep_cell("shared", tmp_path, duration=1.0, value=42)
            ha = s.submit_stages([("x", [cell])], client="a")
            assert wait_until(lambda: (tmp_path / "started-shared").exists())
            hb = s.submit_stages([("x", [cell])], client="b")
            ra = ha.wait(timeout=DEADLINE)
            rb = hb.wait(timeout=DEADLINE)
            assert ra[0]["value"] == rb[0]["value"] == 42
            assert ha.counters["executed"] == 1
            assert hb.counters["executed"] == 0
            assert hb.counters["deduped"] == 1
            assert list(tmp_path.glob("finished-shared")) != []
            # the cell ran exactly once: one started marker
            assert len(list(tmp_path.glob("started-*"))) == 1
            assert s.metrics.dedupe_hits.value == 1


class TestStreamingOrder:
    def test_first_cell_delivered_before_last_cell_starts(self, tmp_path):
        """The acceptance pin: streaming demonstrably streams.

        One worker, staggered costs: the first cell is fast, the last is
        slow.  The first result must reach the client before the last
        cell has even *started* executing.
        """
        with ExperimentScheduler(workers=1) as s:
            cells = [
                sleep_cell("c0", tmp_path, duration=0.0),
                sleep_cell("c1", tmp_path, duration=0.4),
                sleep_cell("c2", tmp_path, duration=0.4),
            ]
            h = s.submit_stages([("sleep", cells)], client="a")
            stream = h.results(timeout=DEADLINE)
            first = next(stream)
            assert first.key == "c0"
            last_started = (tmp_path / "started-c2").exists()
            rest = list(stream)
            assert not last_started, (
                "first result was not delivered until after the last cell "
                "began executing — results are not streaming"
            )
            assert len(rest) == 2


class TestCancellation:
    def test_cancel_stops_dispatch_and_interrupts_inflight(self, tmp_path):
        with ExperimentScheduler(workers=1) as s:
            cells = [sleep_cell(f"c{i}", tmp_path, duration=30)
                     for i in range(3)]
            h = s.submit_stages([("sleep", cells)], client="a")
            assert wait_until(lambda: (tmp_path / "started-c0").exists())
            assert h.cancel()
            with pytest.raises(JobCancelledError):
                list(h.results(timeout=DEADLINE))
            assert h.state is State.CANCELLED
            # no new dispatch: cells 1 and 2 never started
            assert not (tmp_path / "started-c1").exists()
            assert not (tmp_path / "started-c2").exists()
            # in-flight work was interrupted, not awaited: c0 never finished
            assert not (tmp_path / "finished-c0").exists()
            # and the scheduler is still usable afterwards
            h2 = s.submit_stages(
                [("sleep", [sleep_cell("after", tmp_path, value=1)])],
                client="a",
            )
            assert h2.wait(timeout=DEADLINE)[0]["value"] == 1

    def test_cancel_is_idempotent_and_false_when_done(self, tmp_path):
        with ExperimentScheduler(workers=0) as s:
            h = s.submit_stages(
                [("sleep", [sleep_cell("k", tmp_path)])], client="a"
            )
            h.wait(timeout=DEADLINE)
            assert not h.cancel()
            assert not s.cancel("j999999")

    def test_cancelled_task_survives_for_dedupe_subscriber(self, tmp_path):
        # A cancels while B is subscribed to A's in-flight task: the
        # task keeps running (ownership transfer) and B still completes.
        with ExperimentScheduler(workers=1) as s:
            cell = sleep_cell("xfer", tmp_path, duration=1.0, value=9)
            ha = s.submit_stages([("x", [cell])], client="a")
            assert wait_until(lambda: (tmp_path / "started-xfer").exists())
            hb = s.submit_stages([("x", [cell])], client="b")
            assert ha.cancel()
            rb = hb.wait(timeout=DEADLINE)
            assert rb[0]["value"] == 9
            # the surviving execution is credited to nobody's "executed"
            assert hb.counters["deduped"] == 1
            assert hb.counters["executed"] == 0


class TestWorkerDeathRetry:
    def test_sigkill_mid_task_reschedules_once_and_completes(self, tmp_path):
        """The acceptance pin: kill -9 one worker mid-sweep; the task is
        rescheduled exactly once and the job completes."""
        metrics = ServiceMetrics()
        with ExperimentScheduler(workers=1, metrics=metrics) as s:
            cell = TaskSpec(
                key="victim",
                payload={"id": "v", "value": 5, "dir": str(tmp_path)},
                runner=SLOW_FIRST_RUNNER,
            )
            h = s.submit_stages([("x", [cell])], client="a")
            assert wait_until(lambda: (tmp_path / "attempted-v").exists())
            os.kill(s.worker_pids()[0], signal.SIGKILL)
            out = h.wait(timeout=DEADLINE)
            assert out[0]["value"] == 5
            assert out[0]["attempt"] == "retry"
            assert h.state is State.DONE
            assert h.counters["retries"] == 1
            assert metrics.task_retries.value == 1
            assert metrics.worker_respawns.value == 1

    def test_repeated_deaths_fail_the_job(self, tmp_path):
        with ExperimentScheduler(workers=1, max_task_retries=0) as s:
            cell = sleep_cell("k", tmp_path, duration=30)
            h = s.submit_stages([("x", [cell])], client="a")
            assert wait_until(lambda: (tmp_path / "started-k").exists())
            os.kill(s.worker_pids()[0], signal.SIGKILL)
            with pytest.raises(ServiceError, match="lost"):
                h.wait(timeout=DEADLINE)
            assert h.state is State.FAILED


class TestFairQueueing:
    def test_round_robin_interleaves_clients(self, tmp_path):
        # Client A floods the queue first; client B's single cell must
        # not wait for all of A's backlog on the single worker.
        with ExperimentScheduler(workers=1) as s:
            a_cells = [sleep_cell(f"a{i}", tmp_path, duration=0.1)
                       for i in range(6)]
            ha = s.submit_stages([("x", a_cells)], client="a")
            hb = s.submit_stages(
                [("x", [sleep_cell("b0", tmp_path, duration=0.1)])],
                client="b",
            )
            done_b = []
            t_b = threading.Thread(
                target=lambda: (hb.wait(timeout=DEADLINE),
                                done_b.append(time.monotonic())))
            t_b.start()
            ha.wait(timeout=DEADLINE)
            t_a_done = time.monotonic()
            t_b.join(timeout=DEADLINE)
            assert done_b and done_b[0] < t_a_done, (
                "client b's 1-cell job finished after client a's 6-cell "
                "backlog — queueing is not fair"
            )


class TestBackpressure:
    def test_slow_consumer_pauses_own_dispatch(self, tmp_path):
        with ExperimentScheduler(workers=1, backpressure=2) as s:
            cells = [sleep_cell(f"c{i}", tmp_path) for i in range(6)]
            h = s.submit_stages([("x", cells)], client="a")
            # Don't consume: completed-but-undelivered grows to the
            # limit and dispatch stops there.
            assert wait_until(lambda: h.undelivered >= 2)
            time.sleep(0.3)
            started = len(list(tmp_path.glob("started-*")))
            assert started <= 3, (
                f"{started} cells started despite backpressure=2"
            )
            # Draining the stream releases the rest.
            assert len(h.wait(timeout=DEADLINE)) == 6

    def test_detached_job_ignores_backpressure(self, tmp_path):
        # A fire-and-forget submission (nobody drains the stream) must
        # run to completion instead of stalling at the undelivered cap —
        # and must not block later jobs from the same client.
        with ExperimentScheduler(workers=1, backpressure=2) as s:
            cells = [sleep_cell(f"d{i}", tmp_path) for i in range(6)]
            h = s.submit_stages([("x", cells)], client="a")
            h.detach()
            assert wait_until(lambda: h.state is State.DONE)
            assert len(list(tmp_path.glob("finished-d*"))) == 6
            assert h.undelivered == 0
            # the queue head is clear: a follow-up job runs normally
            h2 = s.submit_stages(
                [("x", [sleep_cell("after", tmp_path, value=1)])], client="a"
            )
            assert h2.wait(timeout=DEADLINE)[0]["value"] == 1

    def test_detached_handle_wait_still_returns(self, tmp_path):
        # detach() drops buffered results but keeps the terminal event;
        # results stay reachable through the job's index map.
        with ExperimentScheduler(workers=0, backpressure=1) as s:
            cells = [sleep_cell(f"w{i}", tmp_path, value=i) for i in range(3)]
            h = s.submit_stages([("x", cells)], client="a")
            h.detach()
            out = h.wait(timeout=DEADLINE)
            assert [r["value"] for r in out] == [0, 1, 2]


# ---------------------------------------------------------------------------
# SweepRunner on the scheduler: equivalence acceptance
# ---------------------------------------------------------------------------
def _result_hashes(results):
    import hashlib
    import json

    return [
        hashlib.sha256(
            json.dumps(r.to_dict(), sort_keys=True).encode()
        ).hexdigest()
        for r in results
    ]


@pytest.fixture
def eight_cell_sweep(small_params):
    """The pinned 8-cell sweep: 2 pipelines x 2 stripe factors x 2 seeds."""
    from repro.core.executor import FSConfig

    return [
        small_spec(
            small_params,
            pipeline=pipeline,
            fs=FSConfig(kind="pfs", stripe_factor=sf),
            seed=seed,
        )
        for pipeline in ("embedded", "separate")
        for sf in (8, 16)
        for seed in (0, 1)
    ]


class TestSweepRunnerEquivalence:
    def test_serial_and_parallel_runs_bit_identical(self, eight_cell_sweep,
                                                    tmp_path):
        """Acceptance pin: jobs=1 and process-parallel runs of the same
        sweep produce bit-identical result hashes and identical
        hit/miss/executed counters."""
        with SweepRunner(jobs=1, store=ResultStore(tmp_path / "s1")) as serial:
            r_serial = serial.run(eight_cell_sweep)
            serial_counts = (serial.cache_hits, serial.cache_misses,
                            serial.executed)
        with SweepRunner(jobs=4, store=ResultStore(tmp_path / "s4")) as par:
            r_par = par.run(eight_cell_sweep)
            par_counts = (par.cache_hits, par.cache_misses, par.executed)
        assert _result_hashes(r_serial) == _result_hashes(r_par)
        assert serial_counts == par_counts == (0, 8, 8)

    def test_counter_compat_hits_aliases_and_store(self, small_params,
                                                   tmp_path):
        """Counter semantics match the pre-service SweepRunner exactly:
        duplicates alias without counter traffic, second runs hit."""
        store = ResultStore(tmp_path / "cache")
        a = small_spec(small_params, seed=0)
        b = small_spec(small_params, seed=1)
        with SweepRunner(jobs=1, store=store) as runner:
            results = runner.run([a, b, a])          # a duplicated
            assert (runner.cache_hits, runner.cache_misses,
                    runner.executed) == (0, 2, 2)
            assert results[0] is results[2]
        with SweepRunner(jobs=1, store=store) as runner:
            runner.run([a, b])
            assert (runner.cache_hits, runner.cache_misses,
                    runner.executed) == (2, 0, 0)

    def test_no_store_still_counts_misses(self, small_params):
        with SweepRunner(jobs=1) as runner:
            runner.run([small_spec(small_params)])
            assert runner.cache_misses == 1 and runner.executed == 1

    def test_run_empty_grid_returns_empty_list(self):
        # Pre-service behavior: an empty grid is a no-op, not an error.
        with SweepRunner(jobs=1) as runner:
            assert runner.run([]) == []
            assert (runner.cache_hits, runner.cache_misses,
                    runner.executed) == (0, 0, 0)

    def test_jobs_validated(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(jobs=0)

    def test_run_one_roundtrip(self, small_params):
        with SweepRunner(jobs=1) as runner:
            result = runner.run_one(small_spec(small_params))
            assert result.throughput > 0

    def test_persistent_pool_reused_across_runs(self, small_params, tmp_path):
        a = small_spec(small_params, seed=0)
        b = small_spec(small_params, seed=1)
        with SweepRunner(jobs=2, store=ResultStore(tmp_path)) as runner:
            runner.run([a])
            scheduler = runner._scheduler
            pids_first = set(scheduler.worker_pids())
            runner.run([b])
            assert runner._scheduler is scheduler
            assert set(scheduler.worker_pids()) == pids_first

    def test_close_shuts_workers_down(self, small_params):
        runner = SweepRunner(jobs=2)
        runner.run([small_spec(small_params)])
        pids = runner._scheduler.worker_pids()
        runner.close()
        assert runner._scheduler is None
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_failing_cell_keeps_pool_warm(self, small_params):
        good = small_spec(small_params)
        with SweepRunner(jobs=1) as runner:
            with pytest.raises(ConfigurationError):
                runner.run([small_spec(small_params, pipeline="bogus")])
            # unreachable: spec validation raises at construction.
        with SweepRunner(jobs=2) as runner:
            runner.run([good])
            scheduler = runner._scheduler
            bad = TaskSpec(key="bad", payload={"message": "x"},
                           runner=FAILING_RUNNER)
            h = scheduler.submit_stages([("x", [bad])], client="sweep")
            with pytest.raises(ValueError):
                h.wait(timeout=DEADLINE)
            # pool survived the failed job
            assert runner.run([small_spec(small_params, seed=3)])


class TestSweepRunnerInterrupt:
    def test_ctrl_c_cancels_cleanly_and_keeps_partial_cache(
        self, small_params, tmp_path
    ):
        """Satellite pin: Ctrl-C mid-sweep shuts the workers down and
        leaves already-finished cells in the cache."""
        import _thread

        store_dir = tmp_path / "cache"
        store = ResultStore(store_dir)
        fast = [small_spec(small_params, seed=s) for s in range(2)]
        slow = small_spec(small_params, seed=99,
                          cfg=ExecutionConfig(n_cpis=400, warmup=0))
        runner = SweepRunner(jobs=2, store=store)

        def interrupt_when_first_lands():
            # Wait until at least one fast cell has been cached, then
            # interrupt the main thread (as Ctrl-C would).
            assert wait_until(lambda: len(store.hashes()) >= 1)
            _thread.interrupt_main()

        threading.Thread(target=interrupt_when_first_lands,
                         daemon=True).start()
        with pytest.raises(KeyboardInterrupt):
            runner.run(fast + [slow])
        # workers shut down...
        assert runner._scheduler is None
        # ...and partial results survived in the store
        assert len(store.hashes()) >= 1
        # a fresh runner resumes from the partial cache
        with SweepRunner(jobs=1, store=ResultStore(store_dir)) as fresh:
            fresh.run(fast)
            assert fresh.cache_hits >= 1


# ---------------------------------------------------------------------------
# service metrics
# ---------------------------------------------------------------------------
class TestServiceMetrics:
    def test_instruments_and_snapshot(self):
        m = ServiceMetrics()
        m.tasks_completed.inc()
        m.queue_depth("a").set(3)
        snap = m.snapshot()
        assert snap["service_tasks_completed_total"] == 1
        assert any(k.startswith("service_queue_depth") for k in snap)

    def test_queue_depth_get_or_create(self):
        m = ServiceMetrics()
        assert m.queue_depth("x") is m.queue_depth("x")
        assert m.queue_depth("x") is not m.queue_depth("y")

    def test_scheduler_populates_metrics(self, tmp_path):
        m = ServiceMetrics()
        with ExperimentScheduler(workers=0, metrics=m) as s:
            h = s.submit_stages(
                [("x", [sleep_cell("k", tmp_path)])], client="a"
            )
            h.wait(timeout=DEADLINE)
        snap = m.snapshot()
        assert snap["service_jobs_submitted_total"] == 1
        assert snap["service_jobs_completed_total"] == 1
        assert snap["service_tasks_completed_total"] == 1


# ---------------------------------------------------------------------------
# TCP front end
# ---------------------------------------------------------------------------
@pytest.fixture
def served_scheduler(tmp_path):
    store = ResultStore(tmp_path / "cache")
    with ExperimentScheduler(workers=0, store=store) as scheduler:
        with ExperimentServer(scheduler, port=0) as server:
            yield scheduler, server


class TestServer:
    def test_ping(self, served_scheduler):
        _, server = served_scheduler
        assert request(server.host, server.port,
                       {"op": "ping"})["event"] == "pong"

    def test_submit_follow_streams_and_jobs_listing(self, served_scheduler,
                                                    small_params):
        scheduler, server = served_scheduler
        specs = [small_spec(small_params, seed=s).to_dict() for s in (0, 1)]
        events = list(submit_batch(server.host, server.port, specs,
                                   client="t", follow=True))
        assert events[0]["event"] == "accepted"
        results = [e for e in events if e["event"] == "result"]
        assert len(results) == 2
        assert all("measurement" in e["payload"] for e in results)
        assert events[-1]["event"] == "done"
        assert events[-1]["counters"]["executed"] == 2

        jobs = request(server.host, server.port, {"op": "jobs"})["jobs"]
        assert jobs and jobs[-1]["client"] == "t"
        job_id = events[0]["job"]
        shown = request(server.host, server.port,
                        {"op": "job", "id": job_id})["job"]
        assert shown["state"] == "done"

    def test_submit_no_follow_then_cancel_finished(self, served_scheduler,
                                                   small_params):
        _, server = served_scheduler
        specs = [small_spec(small_params).to_dict()]
        events = list(submit_batch(server.host, server.port, specs,
                                   follow=False))
        assert len(events) == 1 and events[0]["event"] == "accepted"
        job_id = events[0]["job"]
        assert wait_until(
            lambda: request(server.host, server.port,
                            {"op": "job", "id": job_id})["job"]["state"]
            == "done"
        )
        resp = request(server.host, server.port,
                       {"op": "cancel", "id": job_id})
        assert resp["cancelled"] is False

    def test_no_follow_larger_than_backpressure_completes(self, small_params,
                                                          tmp_path):
        # Regression: a fire-and-forget submission with more uncached
        # cells than the backpressure limit used to stall RUNNING
        # forever (nothing drained the stream), wedging the client's
        # whole queue.  The server now detaches the handle.
        store = ResultStore(tmp_path / "cache")
        with ExperimentScheduler(workers=0, store=store,
                                 backpressure=1) as scheduler:
            with ExperimentServer(scheduler, port=0) as server:
                specs = [small_spec(small_params, seed=s).to_dict()
                         for s in range(3)]
                events = list(submit_batch(server.host, server.port, specs,
                                           client="ff", follow=False))
                job_id = events[0]["job"]
                assert wait_until(
                    lambda: scheduler.job(job_id)["state"] == "done"
                )
                # and a later job from the same client is not blocked
                later = list(submit_batch(
                    server.host, server.port,
                    [small_spec(small_params, seed=9).to_dict()],
                    client="ff", follow=True,
                ))
                assert later[-1]["event"] == "done"

    def test_overlapping_submissions_dedupe_via_shared_cache(
        self, served_scheduler, small_params
    ):
        _, server = served_scheduler
        specs = [small_spec(small_params, seed=s).to_dict() for s in (0, 1)]
        first = list(submit_batch(server.host, server.port, specs,
                                  client="one", follow=True))
        second = list(submit_batch(server.host, server.port, specs,
                                   client="two", follow=True))
        assert first[-1]["counters"]["executed"] == 2
        assert second[-1]["counters"]["cache_hits"] == 2
        assert second[-1]["counters"]["executed"] == 0
        # identical payloads from both paths
        a = {e["index"]: e["payload"] for e in first
             if e["event"] == "result"}
        b = {e["index"]: e["payload"] for e in second
             if e["event"] == "result"}
        assert a == b

    def test_bad_requests_rejected_not_fatal(self, served_scheduler):
        _, server = served_scheduler
        with pytest.raises(ServiceError, match="unknown op"):
            request(server.host, server.port, {"op": "frobnicate"})
        with pytest.raises(ServiceError, match="bad specs"):
            request(server.host, server.port,
                    {"op": "submit", "specs": [{"not": "a spec"}]})
        with pytest.raises(ServiceError, match="no such job"):
            request(server.host, server.port, {"op": "job", "id": "j0"})
        # the server is still alive
        assert request(server.host, server.port,
                       {"op": "ping"})["event"] == "pong"
