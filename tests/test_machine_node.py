"""Unit tests for repro.machine.node."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.node import Node, NodeSpec


class TestNodeSpec:
    def test_rejects_nonpositive_flops(self):
        with pytest.raises(ConfigurationError):
            NodeSpec(flops=0, mem_bw=1e9)

    def test_rejects_nonpositive_mem_bw(self):
        with pytest.raises(ConfigurationError):
            NodeSpec(flops=1e6, mem_bw=0)

    def test_compute_time_flop_bound(self):
        spec = NodeSpec(flops=1e6, mem_bw=1e12)
        assert spec.compute_time(2e6) == pytest.approx(2.0)

    def test_compute_time_memory_bound(self):
        spec = NodeSpec(flops=1e12, mem_bw=1e6)
        assert spec.compute_time(flops=10, bytes_touched=3e6) == pytest.approx(3.0)

    def test_compute_time_roofline_max(self):
        spec = NodeSpec(flops=1e6, mem_bw=1e6)
        # 1 s of flops vs 2 s of memory: memory wins.
        assert spec.compute_time(1e6, 2e6) == pytest.approx(2.0)

    def test_compute_time_zero_work(self):
        spec = NodeSpec(flops=1e6, mem_bw=1e6)
        assert spec.compute_time(0.0) == 0.0

    def test_negative_work_rejected(self):
        spec = NodeSpec(flops=1e6, mem_bw=1e6)
        with pytest.raises(ConfigurationError):
            spec.compute_time(-1.0)

    def test_copy_time(self):
        spec = NodeSpec(flops=1e6, mem_bw=100e6)
        assert spec.copy_time(50e6) == pytest.approx(0.5)

    def test_copy_time_negative_rejected(self):
        spec = NodeSpec(flops=1e6, mem_bw=1e6)
        with pytest.raises(ConfigurationError):
            spec.copy_time(-5)


class TestNode:
    def test_identity(self):
        spec = NodeSpec(flops=1e6, mem_bw=1e6, name="n")
        node = Node(7, spec)
        assert node.node_id == 7 and node.spec is spec
