"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.machine.presets import generic_cluster, paragon
from repro.pfs.blockdev import DiskSpec
from repro.sim.kernel import Kernel
from repro.stap.params import STAPParams


@pytest.fixture
def kernel():
    """Fresh DES kernel."""
    return Kernel()


@pytest.fixture
def tiny_params():
    """Very small STAP dimensions for fast numeric tests."""
    return STAPParams(
        n_channels=4,
        n_pulses=16,
        n_ranges=128,
        n_beams=4,
        n_hard_bins=4,
        n_training=32,
        pulse_len=8,
        cfar_window=8,
        cfar_guard=2,
    )


@pytest.fixture
def small_params():
    """Small-but-realistic STAP dimensions for pipeline tests."""
    return STAPParams(
        n_channels=8,
        n_pulses=32,
        n_ranges=256,
        n_beams=6,
        n_hard_bins=8,
        n_training=64,
        pulse_len=16,
        cfar_window=12,
        cfar_guard=3,
        pfa=1e-6,
    )


@pytest.fixture
def disk():
    """A fast disk spec for FS unit tests."""
    return DiskSpec(bandwidth=50e6, overhead=1e-3)


@pytest.fixture
def ideal_machine(kernel):
    """8 compute + 4 I/O nodes on a contention-free network."""
    return generic_cluster().build(kernel, n_compute=8, n_io=4)


@pytest.fixture
def mesh_machine(kernel):
    """8 compute + 4 I/O nodes on a Paragon-like mesh."""
    return paragon().build(kernel, n_compute=8, n_io=4)
