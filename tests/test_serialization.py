"""Lossless serialization round trips for every result-bearing type.

The experiment engine's caching and process-parallel execution both rest
on one invariant: ``X.from_dict(json round trip of X.to_dict())`` is
indistinguishable from ``X`` — including float bit-exactness, so a
cache-served result renders byte-identically to a fresh simulation.
"""

import json

import numpy as np

from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineExecutor, PipelineResult
from repro.core.pipeline import (
    NodeAssignment,
    PipelineSpec,
    build_embedded_pipeline,
    build_separate_io_pipeline,
)
from repro.machine.presets import paragon
from repro.stap.params import STAPParams

FAST = ExecutionConfig(n_cpis=4, warmup=1)


def round_trip(obj, cls=None):
    """JSON-encode obj.to_dict(), decode, rebuild via cls.from_dict."""
    cls = cls or type(obj)
    return cls.from_dict(json.loads(json.dumps(obj.to_dict())))


class TestConfigRoundTrips:
    def test_stap_params(self, small_params):
        clone = round_trip(small_params)
        assert clone == small_params
        assert np.dtype(clone.dtype) == np.dtype(small_params.dtype)
        assert round_trip(STAPParams()) == STAPParams()

    def test_execution_config(self):
        cfg = ExecutionConfig(
            n_cpis=5, warmup=2, window=3, compute=True, threaded=True,
            write_reports=True,
        )
        assert round_trip(cfg) == cfg

    def test_fs_config(self):
        fs = FSConfig("piofs", stripe_factor=80, stripe_unit=131072)
        clone = round_trip(fs)
        assert clone == fs
        assert clone.label() == fs.label()

    def test_node_assignment(self, small_params):
        a = NodeAssignment.case(2, STAPParams())
        clone = round_trip(a)
        assert clone == a
        assert clone.total_without_io == a.total_without_io

    def test_pipeline_spec(self, small_params):
        for build in (build_embedded_pipeline, build_separate_io_pipeline):
            spec = build(NodeAssignment.balanced(small_params, 14))
            clone = round_trip(spec, PipelineSpec)
            assert clone.to_dict() == spec.to_dict()
            assert [t.name for t in clone.tasks] == [t.name for t in spec.tasks]
            assert clone.graph.latency_terms() == spec.graph.latency_terms()


class TestPipelineResultRoundTrip:
    def _run(self, small_params, cfg=FAST, **kw):
        spec = build_embedded_pipeline(NodeAssignment.balanced(small_params, 14))
        return PipelineExecutor(
            spec, small_params, paragon(), FSConfig("pfs", 8), cfg, **kw
        ).run()

    def test_timing_mode_exact(self, small_params):
        res = self._run(small_params)
        clone = round_trip(res, PipelineResult)
        assert clone.to_dict() == res.to_dict()
        # Float bit-exactness, not approximate equality:
        assert clone.throughput == res.throughput
        assert clone.latency == res.latency
        assert clone.elapsed_sim_time == res.elapsed_sim_time

    def test_trace_preserved(self, small_params):
        res = self._run(small_params)
        clone = round_trip(res, PipelineResult)
        assert len(clone.trace.records) == len(res.trace.records)
        a, b = res.trace.records[0], clone.trace.records[0]
        assert (a.task, a.node, a.cpi, a.phase, a.t_start, a.t_end) == (
            b.task, b.node, b.cpi, b.phase, b.t_start, b.t_end
        )

    def test_measurement_preserved(self, small_params):
        res = self._run(small_params)
        clone = round_trip(res, PipelineResult)
        assert list(clone.measurement.task_stats) == list(
            res.measurement.task_stats
        )
        assert clone.measurement.bottleneck_task == res.measurement.bottleneck_task
        for name, stats in res.measurement.task_stats.items():
            assert clone.measurement.task_stats[name].to_dict() == stats.to_dict()

    def test_rank_traffic_tuple_keys_survive(self, small_params):
        res = self._run(small_params)
        clone = round_trip(res, PipelineResult)
        assert clone.rank_traffic == res.rank_traffic
        assert clone.rank_task == res.rank_task
        assert any(
            isinstance(k, tuple) and len(k) == 2 for k in clone.rank_traffic
        )
        assert clone.task_traffic() == res.task_traffic()

    def test_compute_mode_detections(self, tiny_params):
        spec = build_embedded_pipeline(NodeAssignment.balanced(tiny_params, 14))
        res = PipelineExecutor(
            spec, tiny_params, paragon(), FSConfig("pfs", 8),
            ExecutionConfig(n_cpis=2, warmup=0, compute=True),
            seed=42,
        ).run()
        clone = round_trip(res, PipelineResult)
        assert clone.to_dict() == res.to_dict()
        assert len(clone.detections) == len(res.detections)
        # numpy scalars were coerced to plain Python on the way out
        text = json.dumps(res.to_dict())
        assert isinstance(json.loads(text), dict)


class TestExperimentResultRoundTrip:
    def test_experiment_result(self, small_params):
        from repro.bench.experiments import ExperimentResult, run_table1

        exp = run_table1(small_params, FAST)
        clone = round_trip(exp, ExperimentResult)
        assert clone.render() == exp.render()
        assert clone.render_charts() == exp.render_charts()
        assert clone.to_dict() == exp.to_dict()


class TestStructuredExport:
    def test_envelope_and_file(self, small_params, tmp_path):
        from repro.trace.export import to_result_json, write_result_json

        spec = build_embedded_pipeline(NodeAssignment.balanced(small_params, 14))
        res = PipelineExecutor(
            spec, small_params, paragon(), FSConfig("pfs", 8), FAST
        ).run()
        env = to_result_json(res)
        assert env["schema"] == 1
        assert env["kind"] == "PipelineResult"
        rebuilt = PipelineResult.from_dict(env["data"])
        assert rebuilt.to_dict() == res.to_dict()

        path = tmp_path / "result.json"
        write_result_json(res, str(path), pretty=True)
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(env))

    def test_rejects_plain_objects(self):
        import pytest

        from repro.trace.export import to_result_json

        with pytest.raises(TypeError, match="to_dict"):
            to_result_json(object())
