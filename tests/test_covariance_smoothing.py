"""Tests for cross-CPI covariance smoothing (forgetting factor)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineExecutor
from repro.core.pipeline import NodeAssignment, build_embedded_pipeline
from repro.machine.presets import paragon
from repro.stap.analysis import clairvoyant_covariance
from repro.stap.chain import run_cpi_stream
from repro.stap.doppler import doppler_process
from repro.stap.params import STAPParams
from repro.stap.scenario import Jammer, Scenario, make_cube
from repro.stap.weights import (
    CovarianceTracker,
    compute_weights_easy,
    sample_covariance,
)


class TestTracker:
    def test_invalid_memory(self):
        with pytest.raises(ConfigurationError):
            CovarianceTracker(1.0)
        with pytest.raises(ConfigurationError):
            CovarianceTracker(-0.1)

    def test_zero_memory_is_identity(self):
        t = CovarianceTracker(0.0)
        R = np.eye(3, dtype=np.complex64)
        assert t.smooth(5, R) is R

    def test_recursion(self):
        t = CovarianceTracker(0.5)
        a = np.full((2, 2), 4.0, dtype=np.complex128)
        b = np.zeros((2, 2), dtype=np.complex128)
        assert np.allclose(t.smooth(0, a), a)        # first: passthrough
        assert np.allclose(t.smooth(0, b), 0.5 * a)  # 0.5*4 + 0.5*0
        assert np.allclose(t.smooth(0, b), 0.25 * a)

    def test_bins_tracked_independently(self):
        t = CovarianceTracker(0.5)
        a = np.ones((1, 1), dtype=np.complex128)
        t.smooth(0, a)
        fresh = t.smooth(1, 3 * a)  # different bin: no blending with bin 0
        assert np.allclose(fresh, 3 * a)

    def test_params_validation(self):
        with pytest.raises(ConfigurationError):
            STAPParams(covariance_memory=1.5)
        assert STAPParams(covariance_memory=0.7).scaled(0.5).covariance_memory == 0.7


class TestEstimationQuality:
    def test_smoothing_converges_to_clairvoyant(self, tiny_params):
        """More CPIs of memory -> covariance closer to the true one."""
        params = tiny_params
        scene = Scenario(targets=(), jammers=(Jammer(0.6, 25.0),), cnr_db=25.0, seed=5)
        b_label = params.easy_bins[5]
        row = params.easy_bins.index(b_label)
        from repro.stap.weights import training_gates

        gates = training_gates(params.n_ranges, params.n_training)
        true_R = clairvoyant_covariance(params, scene, b_label, hard=False)

        def final_error(memory):
            tracker = CovarianceTracker(memory)
            r_used = None
            for k in range(10):
                dop = doppler_process(make_cube(params, scene, k), params)
                r_hat = sample_covariance(dop.easy[row][:, gates].astype(np.complex128))
                r_used = tracker.smooth(b_label, r_hat) if memory else r_hat
            return np.linalg.norm(r_used - true_R) / np.linalg.norm(true_R)

        assert final_error(0.8) < 0.6 * final_error(0.0)

    def test_smoothed_weights_more_stable(self, tiny_params):
        """Weight jitter across CPIs shrinks with memory."""
        params = tiny_params
        scene = Scenario(targets=(), jammers=(Jammer(0.6, 25.0),), cnr_db=25.0, seed=3)
        dops = [
            doppler_process(make_cube(params, scene, k), params) for k in range(8)
        ]

        def jitter(memory):
            tracker = CovarianceTracker(memory) if memory else None
            ws = [
                compute_weights_easy(d, params, tracker=tracker).weights for d in dops
            ]
            diffs = [np.linalg.norm(a - b) for a, b in zip(ws, ws[1:])]
            return np.mean(diffs[3:])  # after the tracker warms up

        assert jitter(0.8) < 0.7 * jitter(0.0)


class TestPipelineEquivalence:
    def test_pipeline_matches_chain_with_smoothing(self, small_params):
        params = replace(small_params, covariance_memory=0.6)
        scenario = Scenario.standard(params, seed=7)
        cubes = [make_cube(params, scenario, k) for k in range(4)]
        serial = sorted(
            d for r in run_cpi_stream(cubes, params) for d in r.detections
        )
        res = PipelineExecutor(
            build_embedded_pipeline(NodeAssignment.balanced(params, 20)),
            params, paragon(), FSConfig("pfs", 8),
            ExecutionConfig(n_cpis=4, warmup=1, compute=True),
            scenario=scenario,
        ).run()
        got = [(d.cpi_index, d.doppler_bin, d.beam, d.range_gate) for d in res.detections]
        want = [(d.cpi_index, d.doppler_bin, d.beam, d.range_gate) for d in serial]
        assert got == want and len(got) > 0

    def test_memory_zero_identical_to_legacy(self, small_params):
        """covariance_memory=0 must reproduce the paper's behaviour
        bit-for-bit (the default path)."""
        scenario = Scenario.standard(small_params, seed=7)
        cubes = [make_cube(small_params, scenario, k) for k in range(3)]
        base = run_cpi_stream(cubes, small_params)
        explicit = run_cpi_stream(cubes, replace(small_params, covariance_memory=0.0))
        for a, b in zip(base, explicit):
            assert np.array_equal(a.weights_easy.weights, b.weights_easy.weights)
            assert a.detections == b.detections
