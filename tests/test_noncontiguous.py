"""Noncontiguous-access strategy family + fault-path bug sweep.

Covers the PR's tentpole — list I/O (``read_list``/``iread_list``),
ROMIO-style hints on :class:`FSConfig`, and ViPIOS-style server-directed
placement — plus regression tests for the three fault-path bugs:

* a queued resource requester interrupted while waiting used to pin its
  slot forever (``Resource.release`` granted the dead waiter);
* ``IOServer.schedule_outage(at_time=...)`` documented absolute time but
  slept ``at_time`` *relative* to when the arming process ran;
* a timed-out service attempt abandoned the server process but let it
  run to completion, silently inflating ``bytes_shipped`` — now counted
  separately as ``duplicate_ships`` (``docs/fault_model.md``).
"""

import hashlib
import json

import pytest

from repro.bench.engine import ExperimentSpec, run_spec
from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig
from repro.core.pipeline import NodeAssignment
from repro.errors import (
    ConfigurationError,
    ListIOUnsupportedError,
    NoSuchFileError,
    PipelineError,
    ReproError,
    RetriesExhaustedError,
)
from repro.machine.presets import generic_cluster
from repro.pfs import PFS, PIOFS, DiskSpec, OpenMode, RetryPolicy
from repro.pfs.stripe import StripeLayout
from repro.sim.kernel import Kernel
from repro.sim.process import Interrupt
from repro.sim.resources import PriorityResource, Resource


def make_fs(cls=PFS, sf=4, n_compute=4, unit=1024, disk=None, retry=None):
    k = Kernel()
    m = generic_cluster().build(k, n_compute=n_compute, n_io=sf)
    fs = cls(
        m,
        stripe_unit=unit,
        stripe_factor=sf,
        disk=disk or DiskSpec(50e6, 1e-3),
        retry=retry,
    )
    return k, fs


def run(k, gen):
    """Drive a process generator to completion; return value or raise."""
    out = {}

    def wrapper():
        try:
            out["value"] = yield from gen
        except Exception as exc:  # noqa: BLE001 - tests inspect the error
            out["error"] = exc

    k.process(wrapper())
    k.run()
    if "error" in out:
        raise out["error"]
    return out.get("value")


# ---------------------------------------------------------------------------
# Bugfix 1: interrupted-while-queued waiters must not pin resource slots.
# ---------------------------------------------------------------------------
class TestStaleWaiterSlotLeak:
    def _holder(self, kernel, resource, hold):
        def body():
            yield resource.request()
            yield kernel.timeout(hold)
            resource.release()

        return kernel.process(body())

    def _queued(self, kernel, resource, **req_kw):
        """A process that queues on ``resource`` and absorbs an interrupt."""

        def body():
            try:
                yield resource.request(**req_kw)
            except Interrupt:
                return "interrupted"
            resource.release()
            return "granted"

        return kernel.process(body())

    def test_interrupted_queued_requester_frees_the_slot(self, kernel):
        r = Resource(kernel, capacity=1)
        self._holder(kernel, r, hold=2.0)
        victim = self._queued(kernel, r)

        def interrupter():
            yield kernel.timeout(1.0)
            victim.interrupt()

        kernel.process(interrupter())
        kernel.run()
        # Pre-fix: release() granted the dead waiter and in_use stuck at 1.
        assert victim.value == "interrupted"
        assert r.in_use == 0

    def test_slot_stays_usable_after_skipping_dead_waiter(self, kernel):
        r = Resource(kernel, capacity=1)
        self._holder(kernel, r, hold=2.0)
        victim = self._queued(kernel, r)
        survivor = self._queued(kernel, r)  # queued behind the victim

        def interrupter():
            yield kernel.timeout(1.0)
            victim.interrupt()

        kernel.process(interrupter())
        kernel.run()
        assert victim.value == "interrupted"
        assert survivor.value == "granted"
        assert r.in_use == 0

    def test_priority_resource_skips_interrupted_waiter(self, kernel):
        r = PriorityResource(kernel, capacity=1)
        self._holder(kernel, r, hold=2.0)
        victim = self._queued(kernel, r, priority=0)
        survivor = self._queued(kernel, r, priority=5)

        def interrupter():
            yield kernel.timeout(1.0)
            victim.interrupt()

        kernel.process(interrupter())
        kernel.run()
        assert victim.value == "interrupted"
        assert survivor.value == "granted"
        assert r.in_use == 0

    def test_unyielded_request_is_still_granted(self, kernel):
        # The defunct-waiter detection must not misfire on a request that
        # simply has not been yielded yet (no listener != abandoned).
        r = Resource(kernel, capacity=1)
        r.request()
        ev = r.request()
        r.release()
        assert ev.triggered
        assert r.in_use == 1

    def test_disk_queue_survives_interrupted_requester(self):
        # Integration shape: a reader waiting behind a slow request is
        # interrupted (e.g. a deadline path tearing it down); the disk
        # must keep serving everyone else afterwards.
        k, fs = make_fs(sf=1, disk=DiskSpec(bandwidth=1e6, overhead=0.0))
        fs.create("p", phantom_size=8192)
        h = fs.open("p", 0, mode=OpenMode.M_ASYNC)
        slow = k.process(fs.read(h, 0, 100_000))  # ~0.1 s on the disk

        def victim_body():
            try:
                yield from fs.read(h, 0, 1024)
            except Interrupt:
                pass

        victim = k.process(victim_body())

        def interrupter():
            yield k.timeout(0.05)
            victim.interrupt()

        k.process(interrupter())
        k.run()
        assert slow.ok
        srv = fs.servers[0]
        # The disk slot drained: a fresh read is serviced immediately.
        run(k, fs.read(h, 0, 1024))
        assert srv._disk_res.in_use == 0


# ---------------------------------------------------------------------------
# Bugfix 2: schedule_outage(at_time=...) is an absolute simulated time.
# ---------------------------------------------------------------------------
class TestOutageAbsoluteTime:
    def test_outage_armed_late_fires_at_absolute_time(self):
        k, fs = make_fs(sf=1)
        srv = fs.servers[0]

        def armer():
            yield k.timeout(1.0)
            srv.schedule_outage(at_time=3.0, down_for=1.0)

        k.process(armer())
        # Pre-fix the outage landed at t=4.0 (1.0 + 3.0 relative sleep).
        k.run(until=2.5)
        assert srv.up
        k.run(until=3.5)
        assert not srv.up
        k.run(until=4.5)
        assert srv.up and srv.outages == 1

    def test_outage_in_the_past_fires_immediately(self):
        k, fs = make_fs(sf=1)
        srv = fs.servers[0]

        def armer():
            yield k.timeout(1.0)
            srv.schedule_outage(at_time=0.5, down_for=None)
            yield k.timeout(0.0)
            assert not srv.up  # down at the arming instant, not 0.5 later

        k.process(armer())
        k.run()
        assert not srv.up and srv.outages == 1


# ---------------------------------------------------------------------------
# Bugfix 3: late successes of abandoned attempts are duplicate ships.
# ---------------------------------------------------------------------------
class TestDuplicateShipAccounting:
    def test_timed_out_attempts_count_duplicates(self):
        # 1 KB/s disk: a 4096-byte unit takes ~4 s, far past the 0.1 s
        # request timeout.  Both attempts are abandoned by the client but
        # run to completion on the disk and ship their payload anyway.
        disk = DiskSpec(bandwidth=1e3, overhead=0.0)
        policy = RetryPolicy(max_attempts=2, request_timeout=0.1, backoff_base=0.01)
        k, fs = make_fs(sf=1, unit=8192, disk=disk, retry=policy)
        fs.enable_fault_tolerance()
        fs.create("p", phantom_size=4096)
        h = fs.open("p", 0)
        with pytest.raises(RetriesExhaustedError):
            run(k, fs.read(h, 0, 4096))
        srv = fs.servers[0]
        assert srv.duplicate_ships == 2
        assert srv.duplicate_bytes == 8192
        # The inflation the counter makes visible: the client consumed
        # nothing, yet bytes crossed the wire twice.
        assert srv.bytes_shipped == 8192

    def test_fault_free_run_has_no_duplicates(self):
        k, fs = make_fs(sf=2)
        fs.enable_fault_tolerance()
        fs.create("p", phantom_size=65536)
        h = fs.open("p", 0)
        run(k, fs.read(h, 0, 65536))
        assert all(s.duplicate_ships == 0 for s in fs.servers)
        assert all(s.duplicate_bytes == 0 for s in fs.servers)

    def test_executor_exposes_duplicate_ships(self, small_params):
        spec = ExperimentSpec(
            assignment=NodeAssignment.balanced(small_params, 14),
            pipeline="embedded-io",
            machine="paragon",
            fs=FSConfig("pfs", 8, replication=2),
            params=small_params,
            cfg=ExecutionConfig(n_cpis=2, warmup=0),
        )
        result = run_spec(spec)
        per_server = result.disk_stats["duplicate_ships_per_server"]
        assert len(per_server) == 8
        assert sum(per_server) == 0  # no faults injected


# ---------------------------------------------------------------------------
# Server-directed placement arithmetic.
# ---------------------------------------------------------------------------
class TestPlacement:
    def test_declared_units_form_contiguous_blocks(self):
        layout = StripeLayout(1024, 4)
        # Units 2..5: round-robin homes 2,3,0,1 -> remapped 0,1,2,3.
        placement = layout.placement_for_extents([(2048, 4096)])
        assert placement == {2: 0, 3: 1, 4: 2, 5: 3}

    def test_fraction_of_pattern_lands_on_minimal_directory_set(self):
        layout = StripeLayout(1024, 4)
        # 16 declared units over 4 directories: 4 consecutive units each.
        placement = layout.placement_for_extents([(0, 16 * 1024)])
        assert placement == {u: u // 4 for u in range(16)}
        # One client's quarter of the pattern touches exactly 1 directory
        # (round-robin would touch all 4).
        runs = layout.map_range(0, 4 * 1024, placement)
        assert len(runs) == 1 and runs[0].n_units == 4

    def test_empty_pattern_means_no_remap(self):
        layout = StripeLayout(1024, 4)
        assert layout.placement_for_extents([]) == {}
        assert layout.placement_for_extents([(0, 0)]) == {}

    def test_undeclared_units_keep_round_robin(self):
        layout = StripeLayout(1024, 4)
        placement = layout.placement_for_extents([(0, 2048)])  # units 0,1
        runs = layout.map_range(8 * 1024, 1024, placement)  # unit 8
        assert [r.directory for r in runs] == [8 % 4]

    def test_declare_access_is_idempotent(self):
        _, fs = make_fs()
        fs.create("p", phantom_size=16 * 1024)
        first = fs.declare_access("p", [(0, 8192)])
        again = fs.declare_access("p", [(0, 8192)])
        assert first == again
        assert fs.declared_placement("p") == first

    def test_redeclaring_a_new_pattern_replaces_the_remap(self):
        _, fs = make_fs()
        fs.create("p", phantom_size=16 * 1024)
        fs.declare_access("p", [(0, 4096)])
        second = fs.declare_access("p", [(4096, 4096)])
        assert fs.declared_placement("p") == second
        assert set(second) == {4, 5, 6, 7}

    def test_declare_on_missing_file_rejected(self):
        _, fs = make_fs()
        with pytest.raises(NoSuchFileError):
            fs.declare_access("nope", [(0, 1024)])

    def test_remap_preserves_file_contents(self):
        k, fs = make_fs()
        fs.create("p")
        fs.declare_access("p", [(0, 8 * 1024)])
        h = fs.open("p", 0)
        payload = bytes(range(256)) * 32  # 8 KiB
        run(k, fs.write(h, 0, payload))
        assert run(k, fs.read(h, 0, len(payload))) == payload


# ---------------------------------------------------------------------------
# The list-I/O call.
# ---------------------------------------------------------------------------
class TestReadList:
    def _ready_fs(self, **kw):
        k, fs = make_fs(**kw)
        fs.create("p")
        h = fs.open("p", 0, mode=OpenMode.M_ASYNC)
        payload = bytes(range(256)) * 32  # 8 KiB over 8 units
        run(k, fs.write(h, 0, payload))
        return k, fs, h, payload

    def test_piofs_has_no_list_io(self):
        k, fs = make_fs(cls=PIOFS)
        assert not fs.supports_list_io
        fs.create("p", phantom_size=4096)
        h = fs.open("p", 0)
        with pytest.raises(ListIOUnsupportedError):
            run(k, fs.read_list([(h, 0, 1024)]))

    def test_one_request_per_directory(self):
        k, fs, h, payload = self._ready_fs()
        served_before = [s.requests_served for s in fs.servers]
        # Four pieces on two directories (units 0,4 -> dir 0; 1,5 -> dir 1).
        accesses = [(h, 0, 1024), (h, 1024, 1024), (h, 4096, 1024), (h, 5120, 1024)]
        out = run(k, fs.read_list(accesses))
        assert out == [payload[o : o + n] for _, o, n in accesses]
        served = [
            s.requests_served - b for s, b in zip(fs.servers, served_before)
        ]
        # One batched request per touched directory; read() would issue 4.
        assert served == [1, 1, 0, 0]

    def test_max_runs_hint_splits_batches(self):
        k, fs, h, payload = self._ready_fs()
        fs.hints["list_io_max_runs"] = 1
        served_before = [s.requests_served for s in fs.servers]
        accesses = [(h, 0, 1024), (h, 1024, 1024), (h, 4096, 1024), (h, 5120, 1024)]
        out = run(k, fs.read_list(accesses))
        assert out == [payload[o : o + n] for _, o, n in accesses]
        served = [
            s.requests_served - b for s, b in zip(fs.servers, served_before)
        ]
        assert served == [2, 2, 0, 0]  # one request per piece again

    def test_results_in_input_order_across_files(self):
        k, fs = make_fs()
        fs.create("a")
        fs.create("b")
        ha = fs.open("a", 0, mode=OpenMode.M_ASYNC)
        hb = fs.open("b", 0, mode=OpenMode.M_ASYNC)
        run(k, fs.write(ha, 0, b"A" * 4096))
        run(k, fs.write(hb, 0, b"B" * 4096))
        out = run(
            k,
            fs.read_list([(hb, 0, 1024), (ha, 2048, 512), (hb, 3072, 1024)]),
        )
        assert out == [b"B" * 1024, b"A" * 512, b"B" * 1024]

    def test_same_bytes_as_individual_reads(self):
        k, fs, h, payload = self._ready_fs()
        accesses = [(h, 256, 512), (h, 3000, 2000), (h, 7000, 1000)]
        batched = run(k, fs.read_list(accesses))
        individual = [run(k, fs.read(h, o, n)) for _, o, n in accesses]
        assert batched == individual


# ---------------------------------------------------------------------------
# ROMIO-style hints: validation and serialization.
# ---------------------------------------------------------------------------
class TestHints:
    def _spec(self, small_params, **fs_kw):
        fs_kw.setdefault("kind", "pfs")
        fs_kw.setdefault("stripe_factor", 8)
        return ExperimentSpec(
            assignment=NodeAssignment.balanced(small_params, 14),
            pipeline=fs_kw.pop("pipeline", "embedded-io"),
            machine="paragon",
            fs=FSConfig(**fs_kw),
            params=small_params,
            cfg=ExecutionConfig(n_cpis=2, warmup=0),
        )

    @pytest.mark.parametrize("hint", FSConfig.HINT_FIELDS)
    def test_hint_below_one_rejected(self, small_params, hint):
        with pytest.raises(ConfigurationError, match="must be >= 1"):
            run_spec(self._spec(small_params, **{hint: 0}))

    def test_list_io_hint_rejected_on_piofs(self, small_params):
        with pytest.raises(ConfigurationError, match="list_io_max_runs"):
            run_spec(self._spec(small_params, kind="piofs", list_io_max_runs=4))

    def test_list_io_strategy_rejected_on_piofs(self, small_params):
        with pytest.raises(PipelineError, match="list-I/O"):
            run_spec(self._spec(small_params, kind="piofs", pipeline="list-io"))

    def test_sieve_hint_accepted_on_piofs(self, small_params):
        # Data sieving is plain read() underneath: valid on both systems.
        result = run_spec(
            self._spec(
                small_params,
                kind="piofs",
                pipeline="data-sieving",
                sieve_buffer_size=128 * 1024,
            )
        )
        assert result.throughput > 0

    def test_default_config_serializes_without_hint_keys(self):
        d = FSConfig().to_dict()
        for hint in FSConfig.HINT_FIELDS:
            assert hint not in d  # golden spec hashes depend on this

    def test_set_hints_round_trip(self):
        cfg = FSConfig("pfs", 16, cb_nodes=4, list_io_max_runs=8)
        d = cfg.to_dict()
        assert d["cb_nodes"] == 4 and d["list_io_max_runs"] == 8
        assert "sieve_buffer_size" not in d
        assert FSConfig.from_dict(d) == cfg

    def test_cli_hint_parsing(self):
        from repro.cli import _parse_hints

        assert _parse_hints(["cb_nodes=4", "sieve_buffer_size=65536"]) == {
            "cb_nodes": 4,
            "sieve_buffer_size": 65536,
        }
        with pytest.raises(ReproError, match="unknown hint"):
            _parse_hints(["bogus=1"])
        with pytest.raises(ReproError, match="integer"):
            _parse_hints(["cb_nodes=many"])


# ---------------------------------------------------------------------------
# Strategy equivalence: same spec, compute mode, byte-identical answers.
# ---------------------------------------------------------------------------
STRATEGIES = ("embedded-io", "data-sieving", "list-io", "server-directed")


@pytest.fixture(scope="module")
def compute_results():
    """One compute-mode run per strategy on an identical spec."""
    from repro.stap.params import STAPParams

    params = STAPParams(
        n_channels=8, n_pulses=32, n_ranges=256, n_beams=6, n_hard_bins=8,
        n_training=64, pulse_len=16, cfar_window=12, cfar_guard=3, pfa=1e-6,
    )
    assignment = NodeAssignment.balanced(params, 14)
    cfg = ExecutionConfig(n_cpis=4, warmup=1, compute=True)
    out = {}
    for name in STRATEGIES:
        spec = ExperimentSpec(
            assignment=assignment, pipeline=name, machine="paragon",
            fs=FSConfig("pfs", 8), params=params, cfg=cfg, seed=7,
        )
        out[name] = run_spec(spec)
    return out


class TestStrategyEquivalence:
    def _detections_digest(self, result):
        payload = json.dumps(result.to_dict()["detections"], sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def test_detections_byte_identical(self, compute_results):
        digests = {
            name: self._detections_digest(r)
            for name, r in compute_results.items()
        }
        assert len(set(digests.values())) == 1, digests

    def test_list_io_issues_strictly_fewer_requests(self, compute_results):
        reqs = {
            name: sum(r.disk_stats["requests_per_server"])
            for name, r in compute_results.items()
        }
        assert reqs["list-io"] < reqs["embedded-io"]
        # The whole 4-file window collapses into one request per
        # directory: a 4x reduction on this round-robin fileset.
        assert reqs["list-io"] * 4 == reqs["embedded-io"]

    def test_sieving_pad_overhead_pinned(self, compute_results):
        exact = compute_results["embedded-io"].disk_stats["bytes_served"]
        sieved = compute_results["data-sieving"].disk_stats["bytes_served"]
        # Whole-stripe-unit widening on this spec reads exactly 512 KiB
        # of pad the other strategies never touch.
        assert sieved - exact == 512 * 1024

    def test_list_io_and_server_directed_read_exact_bytes(self, compute_results):
        exact = compute_results["embedded-io"].disk_stats["bytes_served"]
        for name in ("list-io", "server-directed"):
            assert compute_results[name].disk_stats["bytes_served"] == exact
