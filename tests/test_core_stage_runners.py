"""Unit tests for the sequential/threaded stage runners using a
synthetic TaskStages (no pipeline machinery)."""

import pytest

from repro.core.stages import TaskStages, run_sequential, run_threaded
from repro.sim.kernel import Kernel
from repro.trace.collector import TraceCollector
from repro.trace.record import Phase


class _MiniCfg:
    def __init__(self, n_cpis, threaded=False):
        self.n_cpis = n_cpis
        self.threaded = threaded
        self.compute = False
        self.window = 2
        self.warmup = 0


class _MiniCtx:
    """Just enough context for the runners."""

    def __init__(self, kernel, n_cpis):
        self.kernel = kernel
        self.cfg = _MiniCfg(n_cpis)
        self.trace = TraceCollector()
        self.name = "mini"
        self.local = 0

    @property
    def now(self):
        return self.kernel.now

    def record(self, cpi, phase, t_start, t_end=None):
        self.trace.add("mini", 0, cpi, phase, t_start,
                       self.now if t_end is None else t_end)


class SyntheticStages(TaskStages):
    """recv 1 s, compute 2 s, send 1 s; logs everything."""

    def __init__(self, ctx, t_recv=1.0, t_comp=2.0, t_send=1.0):
        super().__init__(ctx)
        self.t_recv, self.t_comp, self.t_send = t_recv, t_comp, t_send
        self.log = []
        self.prologues = []

    def setup(self):
        return True

    def recv_prologue(self):
        self.prologues.append("recv")
        return
        yield

    def send_prologue(self):
        self.prologues.append("send")
        return
        yield

    def recv(self, k):
        yield self.ctx.kernel.timeout(self.t_recv)
        self.log.append(("recv", k, self.ctx.now))
        return f"in{k}"

    def compute(self, k, inputs):
        assert inputs == f"in{k}"
        yield self.ctx.kernel.timeout(self.t_comp)
        self.log.append(("comp", k, self.ctx.now))
        return f"out{k}"

    def send(self, k, outputs):
        assert outputs == f"out{k}"
        yield self.ctx.kernel.timeout(self.t_send)
        self.log.append(("send", k, self.ctx.now))


def run_with(runner, n_cpis=3, **stage_kw):
    kernel = Kernel()
    ctx = _MiniCtx(kernel, n_cpis)
    stages = SyntheticStages(ctx, **stage_kw)
    kernel.process(runner(stages))
    kernel.run()
    return kernel, ctx, stages


class TestSequentialRunner:
    def test_total_time_is_sum_of_phases(self):
        kernel, _, _ = run_with(run_sequential, n_cpis=3)
        assert kernel.now == pytest.approx(3 * (1 + 2 + 1))

    def test_strict_ordering(self):
        _, _, stages = run_with(run_sequential, n_cpis=2)
        kinds = [(kind, k) for kind, k, _ in stages.log]
        assert kinds == [
            ("recv", 0), ("comp", 0), ("send", 0),
            ("recv", 1), ("comp", 1), ("send", 1),
        ]

    def test_prologues_run_once(self):
        _, _, stages = run_with(run_sequential, n_cpis=2)
        assert stages.prologues == ["recv", "send"]

    def test_phases_traced(self):
        _, ctx, _ = run_with(run_sequential, n_cpis=2)
        assert ctx.trace.phase_time("mini", 1, Phase.RECV) == pytest.approx(1.0)
        assert ctx.trace.phase_time("mini", 1, Phase.COMPUTE) == pytest.approx(2.0)

    def test_empty_setup_skips(self):
        kernel = Kernel()
        ctx = _MiniCtx(kernel, 2)
        stages = SyntheticStages(ctx)
        stages.setup = lambda: False
        kernel.process(run_sequential(stages))
        kernel.run()
        assert stages.log == [] and kernel.now == 0.0

    def test_skip_last_send(self):
        kernel = Kernel()
        ctx = _MiniCtx(kernel, 2)
        stages = SyntheticStages(ctx)
        stages.sends_last_cpi = False
        kernel.process(run_sequential(stages))
        kernel.run()
        sends = [k for kind, k, _ in stages.log if kind == "send"]
        assert sends == [0]


class TestThreadedRunner:
    def test_cycle_approaches_max_phase(self):
        """With compute dominating (2 s), N CPIs take ~N*2 s + ramp,
        not N*4 s."""
        n = 6
        kernel, _, _ = run_with(run_threaded, n_cpis=n)
        sequential_time = n * 4.0
        ideal = n * 2.0 + (1.0 + 1.0)  # pipeline fill + drain
        assert kernel.now == pytest.approx(ideal)
        assert kernel.now < 0.6 * sequential_time

    def test_all_cpis_processed_in_order_per_stage(self):
        _, _, stages = run_with(run_threaded, n_cpis=4)
        for kind in ("recv", "comp", "send"):
            ks = [k for kd, k, _ in stages.log if kd == kind]
            assert ks == [0, 1, 2, 3]

    def test_phases_overlap(self):
        """recv of CPI 1 finishes before send of CPI 0 does."""
        _, _, stages = run_with(run_threaded, n_cpis=3)
        t_recv1 = next(t for kd, k, t in stages.log if kd == "recv" and k == 1)
        t_send0 = next(t for kd, k, t in stages.log if kd == "send" and k == 0)
        assert t_recv1 < t_send0

    def test_bounded_readahead(self):
        """Depth-1 queues bound the receive thread's lead over completed
        sends to the pipeline's 5 holding slots (in-recv + q_in +
        in-compute + q_out + in-send) — never unbounded."""
        _, _, stages = run_with(run_threaded, n_cpis=8, t_recv=0.1, t_comp=0.1,
                                t_send=10.0)
        events = sorted(stages.log, key=lambda e: e[2])
        max_lead = 0
        sent = -1
        for kind, k, _ in events:
            if kind == "send":
                sent = k
            if kind == "recv":
                max_lead = max(max_lead, k - sent)
        assert max_lead <= 5

    def test_prologues_run_in_their_threads(self):
        _, _, stages = run_with(run_threaded, n_cpis=1)
        assert sorted(stages.prologues) == ["recv", "send"]

    def test_skip_last_send(self):
        kernel = Kernel()
        ctx = _MiniCtx(kernel, 3)
        stages = SyntheticStages(ctx)
        stages.sends_last_cpi = False
        kernel.process(run_threaded(stages))
        kernel.run()
        sends = [k for kind, k, _ in stages.log if kind == "send"]
        assert sends == [0, 1]

    def test_empty_setup_skips(self):
        kernel = Kernel()
        ctx = _MiniCtx(kernel, 2)
        stages = SyntheticStages(ctx)
        stages.setup = lambda: False
        kernel.process(run_threaded(stages))
        kernel.run()
        assert stages.log == []
