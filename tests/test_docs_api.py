"""docs/api.md drift check: every indexed symbol must actually import.

The index is parsed structurally — module sections are ``## `module` ``
headings, symbols are the backticked identifiers in each table's first
column — so adding a symbol to the docs without exporting it (or
renaming an export without updating the docs) fails here, not in a
reader's session.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

API_MD = Path(__file__).resolve().parent.parent / "docs" / "api.md"

_HEADING = re.compile(r"^## `([a-zA-Z_.]+)`")
_TICKED = re.compile(r"`([^`]+)`")
_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _indexed_symbols():
    """Yield (module_name, symbol) for every plain identifier in a
    first-column table cell of docs/api.md."""
    module = None
    for line in API_MD.read_text(encoding="utf-8").splitlines():
        m = _HEADING.match(line)
        if m:
            module = m.group(1)
            continue
        if module is None or not line.startswith("| `"):
            continue
        first_col = line.split("|")[1]
        for token in _TICKED.findall(first_col):
            # Shorthand like `run_table1..4` or `a/b/c` names families,
            # not importables; only exact identifiers are checked.
            if _IDENT.match(token):
                yield module, token


CASES = sorted(set(_indexed_symbols()))


def test_index_was_parsed():
    modules = {m for m, _ in CASES}
    # Guards against a docs reshuffle silently emptying the check.
    assert {"repro", "repro.obs", "repro.trace", "repro.bench"} <= modules
    assert len(CASES) > 80


@pytest.mark.parametrize(
    "module,symbol", CASES, ids=[f"{m}.{s}" for m, s in CASES]
)
def test_documented_symbol_imports(module, symbol):
    assert hasattr(importlib.import_module(module), symbol), (
        f"docs/api.md lists `{symbol}` under `{module}`, "
        f"but it is not importable from there"
    )
