"""Executor tests: timing mode, compute mode, and chain equivalence."""

import pytest

from repro.errors import ConfigurationError
from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineExecutor
from repro.core.pipeline import (
    NodeAssignment,
    build_embedded_pipeline,
    build_separate_io_pipeline,
    combine_pulse_cfar,
)
from repro.machine.presets import ibm_sp, paragon
from repro.stap.chain import run_cpi_stream
from repro.stap.scenario import Scenario, make_cube


@pytest.fixture
def assignment(small_params):
    return NodeAssignment.balanced(small_params, 20, io_nodes=4)


def run(spec, params, preset=None, fs=None, cfg=None, scenario=None):
    return PipelineExecutor(
        spec,
        params,
        preset or paragon(),
        fs or FSConfig("pfs", stripe_factor=8),
        cfg or ExecutionConfig(n_cpis=5, warmup=1),
        scenario=scenario,
    ).run()


class TestConfig:
    def test_invalid_execution_config(self):
        with pytest.raises(ValueError):
            ExecutionConfig(n_cpis=0)
        with pytest.raises(ValueError):
            ExecutionConfig(n_cpis=2, warmup=2)
        with pytest.raises(ValueError):
            ExecutionConfig(window=0)

    def test_unknown_fs_kind(self, small_params, assignment):
        spec = build_embedded_pipeline(assignment)
        with pytest.raises(ConfigurationError):
            PipelineExecutor(spec, small_params, paragon(), FSConfig("zfs", 8))

    def test_compute_mode_needs_scenario(self, small_params, assignment):
        spec = build_embedded_pipeline(assignment)
        with pytest.raises(ConfigurationError):
            PipelineExecutor(
                spec, small_params, paragon(), FSConfig("pfs", 8),
                ExecutionConfig(n_cpis=2, warmup=0, compute=True),
            )

    def test_fs_label(self):
        assert FSConfig("pfs", 16).label() == "PFS sf=16"
        assert FSConfig("piofs", 80, name="custom").label() == "custom"


class TestTimingMode:
    def test_run_produces_measurement(self, small_params, assignment):
        res = run(build_embedded_pipeline(assignment), small_params)
        m = res.measurement
        assert res.throughput > 0 and res.latency > 0
        assert set(m.task_stats) == set(res.spec.task_names())
        assert m.bottleneck_task in m.task_stats

    def test_deterministic(self, small_params, assignment):
        spec = build_embedded_pipeline(assignment)
        r1 = run(spec, small_params)
        r2 = run(spec, small_params)
        assert r1.throughput == r2.throughput
        assert r1.latency == r2.latency

    def test_all_cpis_traced_for_all_tasks(self, small_params, assignment):
        res = run(build_embedded_pipeline(assignment), small_params)
        for t in res.spec.task_names():
            assert res.trace.cpis(t) == list(range(5))

    def test_separate_io_pipeline_runs(self, small_params, assignment):
        res = run(build_separate_io_pipeline(assignment), small_params)
        assert res.throughput > 0
        assert "read" in res.measurement.task_stats

    def test_combined_pipeline_runs(self, small_params, assignment):
        res = run(combine_pulse_cfar(build_embedded_pipeline(assignment)), small_params)
        assert "pc_cfar" in res.measurement.task_stats

    def test_piofs_runs(self, small_params, assignment):
        res = run(
            build_embedded_pipeline(assignment), small_params,
            preset=ibm_sp(), fs=FSConfig("piofs", 8),
        )
        assert res.throughput > 0

    def test_measured_consistent_with_model_form(self, small_params, assignment):
        """Measured throughput ~ 1/max(T_i) (Eq. 1 operationalised)."""
        res = run(
            build_embedded_pipeline(assignment), small_params,
            cfg=ExecutionConfig(n_cpis=8, warmup=3),
        )
        m = res.measurement
        assert m.throughput == pytest.approx(m.model_throughput, rel=0.25)

    def test_latency_at_least_critical_path_compute(self, small_params, assignment):
        res = run(build_embedded_pipeline(assignment), small_params)
        m = res.measurement
        path_compute = (
            m.task_stats["doppler"].compute
            + max(m.task_stats["easy_bf"].compute, m.task_stats["hard_bf"].compute)
            + m.task_stats["pulse_compr"].compute
            + m.task_stats["cfar"].compute
        )
        assert res.latency >= path_compute

    def test_no_detections_in_timing_mode(self, small_params, assignment):
        res = run(build_embedded_pipeline(assignment), small_params)
        assert res.detections == []

    def test_window_bounds_pipelining(self, small_params, assignment):
        """A wider credit window cannot hurt throughput."""
        spec = build_embedded_pipeline(assignment)
        r1 = run(spec, small_params, cfg=ExecutionConfig(n_cpis=6, warmup=2, window=1))
        r3 = run(spec, small_params, cfg=ExecutionConfig(n_cpis=6, warmup=2, window=3))
        assert r3.throughput >= r1.throughput * 0.99


class TestComputeMode:
    @pytest.fixture
    def scenario(self, small_params):
        return Scenario.standard(small_params, seed=7)

    @pytest.fixture
    def serial_detections(self, small_params, scenario):
        cubes = [make_cube(small_params, scenario, k) for k in range(4)]
        results = run_cpi_stream(cubes, small_params)
        return sorted(d for r in results for d in r.detections)

    @pytest.mark.parametrize(
        "builder",
        [
            build_embedded_pipeline,
            build_separate_io_pipeline,
            lambda a: combine_pulse_cfar(build_embedded_pipeline(a)),
        ],
        ids=["embedded", "separate", "combined"],
    )
    def test_pipeline_matches_serial_chain(
        self, small_params, assignment, scenario, serial_detections, builder
    ):
        res = run(
            builder(assignment), small_params,
            cfg=ExecutionConfig(n_cpis=4, warmup=1, compute=True),
            scenario=scenario,
        )
        got = [(d.cpi_index, d.doppler_bin, d.beam, d.range_gate) for d in res.detections]
        want = [
            (d.cpi_index, d.doppler_bin, d.beam, d.range_gate) for d in serial_detections
        ]
        assert got == want
        for a, b in zip(res.detections, serial_detections):
            assert a.snr_db == pytest.approx(b.snr_db, abs=0.1)

    def test_compute_and_timing_modes_time_identically(
        self, small_params, assignment, scenario
    ):
        spec = build_embedded_pipeline(assignment)
        rt = run(spec, small_params, cfg=ExecutionConfig(n_cpis=4, warmup=1))
        rc = run(
            spec, small_params,
            cfg=ExecutionConfig(n_cpis=4, warmup=1, compute=True),
            scenario=scenario,
        )
        assert rc.throughput == pytest.approx(rt.throughput, rel=1e-6)
        assert rc.latency == pytest.approx(rt.latency, rel=1e-6)

    def test_piofs_compute_mode(self, small_params, assignment, scenario, serial_detections):
        res = run(
            build_embedded_pipeline(assignment), small_params,
            preset=ibm_sp(), fs=FSConfig("piofs", 8),
            cfg=ExecutionConfig(n_cpis=4, warmup=1, compute=True),
            scenario=scenario,
        )
        got = [(d.cpi_index, d.doppler_bin, d.beam, d.range_gate) for d in res.detections]
        want = [
            (d.cpi_index, d.doppler_bin, d.beam, d.range_gate) for d in serial_detections
        ]
        assert got == want
