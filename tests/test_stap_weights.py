"""Tests for adaptive weight computation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stap.doppler import doppler_process
from repro.stap.scenario import Scenario, make_cube, spatial_steering
from repro.stap.weights import (
    compute_weights_easy,
    compute_weights_hard,
    initial_weights,
    solve_mvdr,
    steering_matrix_easy,
    steering_matrix_hard,
    training_gates,
)


class TestTrainingGates:
    def test_count(self):
        assert len(training_gates(100, 10)) == 10

    def test_span(self):
        g = training_gates(100, 10)
        assert g[0] == 0 and g[-1] == 99

    def test_monotone_unique(self):
        g = training_gates(1024, 96)
        assert np.all(np.diff(g) > 0)

    def test_full_coverage(self):
        g = training_gates(8, 8)
        assert list(g) == list(range(8))

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            training_gates(10, 0)
        with pytest.raises(ConfigurationError):
            training_gates(10, 11)


class TestSteering:
    def test_easy_shape(self, tiny_params):
        v = steering_matrix_easy(tiny_params)
        assert v.shape == (tiny_params.n_channels, tiny_params.n_beams)

    def test_hard_shape_and_phase(self, tiny_params):
        p = tiny_params
        b = p.hard_bins[0]
        v = steering_matrix_hard(p, b)
        assert v.shape == (2 * p.n_channels, p.n_beams)
        top, bottom = v[: p.n_channels], v[p.n_channels :]
        from repro.stap.doppler import bin_frequency

        phase = np.exp(2j * np.pi * bin_frequency(b, p.n_pulses))
        assert np.allclose(bottom, phase * top, atol=1e-6)


class TestSolveMVDR:
    def _noise_snapshots(self, dof, n, seed=0):
        rng = np.random.default_rng(seed)
        return (
            (rng.standard_normal((dof, n)) + 1j * rng.standard_normal((dof, n)))
            / np.sqrt(2)
        ).astype(np.complex64)

    def test_distortionless_constraint(self):
        X = self._noise_snapshots(8, 100)
        v = np.stack([spatial_steering(a, 8) for a in (0.0, 0.3)], axis=1)
        w = solve_mvdr(X, v, diagonal_load=0.05)
        gains = np.sum(v.conj() * w, axis=0)
        assert np.allclose(gains, 1.0, atol=1e-4)

    def test_white_noise_gives_scaled_steering(self):
        X = self._noise_snapshots(8, 5000)
        v = spatial_steering(0.2, 8)[:, None]
        w = solve_mvdr(X, v, diagonal_load=0.01)
        # R ~ I: w ~ v / (v^H v) = v / 8.
        assert np.allclose(w[:, 0], v[:, 0] / 8.0, atol=0.02)

    def test_jammer_is_nulled(self):
        rng = np.random.default_rng(1)
        dof, n = 8, 500
        a_j = spatial_steering(0.5, dof)
        noise = self._noise_snapshots(dof, n, seed=2)
        jam = a_j[:, None] * (
            (rng.standard_normal(n) + 1j * rng.standard_normal(n))
            * np.sqrt(1000 / 2)
        )[None, :]
        X = (noise + jam).astype(np.complex64)
        v = spatial_steering(-0.3, dof)[:, None]
        w = solve_mvdr(X, v, diagonal_load=0.01)
        # Response toward the jammer is crushed relative to the look direction.
        jammer_gain = abs(np.vdot(w[:, 0], a_j))
        look_gain = abs(np.vdot(w[:, 0], v[:, 0]))
        assert jammer_gain < 0.02 * look_gain

    def test_dof_mismatch_rejected(self):
        X = self._noise_snapshots(8, 50)
        v = spatial_steering(0.1, 4)[:, None]
        with pytest.raises(ConfigurationError):
            solve_mvdr(X, v, 0.05)

    def test_output_dtype(self):
        X = self._noise_snapshots(4, 40)
        v = spatial_steering(0.0, 4)[:, None]
        assert solve_mvdr(X, v, 0.05).dtype == np.complex64


class TestWeightGroups:
    @pytest.fixture
    def dop(self, tiny_params):
        cube = make_cube(tiny_params, Scenario.standard(tiny_params), 0)
        return doppler_process(cube, tiny_params)

    def test_easy_shapes(self, dop, tiny_params):
        ws = compute_weights_easy(dop, tiny_params)
        p = tiny_params
        assert ws.weights.shape == (p.n_easy_bins, p.easy_dof, p.n_beams)
        assert ws.bins == p.easy_bins
        assert ws.from_cpi == 0

    def test_hard_shapes(self, dop, tiny_params):
        ws = compute_weights_hard(dop, tiny_params)
        p = tiny_params
        assert ws.weights.shape == (p.n_hard_bins, p.hard_dof, p.n_beams)
        assert ws.bins == p.hard_bins

    def test_subset_matches_full(self, dop, tiny_params):
        full = compute_weights_easy(dop, tiny_params)
        sub = compute_weights_easy(dop, tiny_params, bin_subset=[2, 5])
        assert np.allclose(sub.weights[0], full.weights[2])
        assert np.allclose(sub.weights[1], full.weights[5])
        assert sub.bins == (tiny_params.easy_bins[2], tiny_params.easy_bins[5])

    def test_empty_subset(self, dop, tiny_params):
        sub = compute_weights_hard(dop, tiny_params, bin_subset=[])
        assert sub.weights.shape[0] == 0 and sub.bins == ()

    def test_nbytes(self, dop, tiny_params):
        ws = compute_weights_easy(dop, tiny_params)
        assert ws.nbytes == ws.weights.nbytes


class TestInitialWeights:
    def test_easy_is_normalised_steering(self, tiny_params):
        p = tiny_params
        w = initial_weights(p, hard=False, bins=p.easy_bins)
        v = steering_matrix_easy(p)
        gains = np.sum(v.conj()[None] * w, axis=1)
        assert np.allclose(gains, 1.0, atol=1e-5)

    def test_hard_shape(self, tiny_params):
        p = tiny_params
        w = initial_weights(p, hard=True, bins=p.hard_bins)
        assert w.shape == (p.n_hard_bins, p.hard_dof, p.n_beams)

    def test_empty_bins(self, tiny_params):
        w = initial_weights(tiny_params, hard=False, bins=())
        assert w.shape[0] == 0
