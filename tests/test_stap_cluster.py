"""Tests for detection clustering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stap.cfar import Detection
from repro.stap.cluster import cluster_detections, _wrapped_span


def det(b, k, r, snr=10.0, cpi=0):
    return Detection(doppler_bin=b, beam=k, range_gate=r, snr_db=snr, cpi_index=cpi)


class TestWrappedSpan:
    def test_single(self):
        assert _wrapped_span([5], 16) == 0

    def test_contiguous(self):
        assert _wrapped_span([3, 4, 5], 16) == 2

    def test_wrapping(self):
        assert _wrapped_span([15, 0, 1], 16) == 2

    def test_opposite(self):
        assert _wrapped_span([0, 8], 16) == 8


class TestClustering:
    def test_empty(self):
        assert cluster_detections([], 16) == []

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            cluster_detections([det(0, 0, 0)], 0)
        with pytest.raises(ConfigurationError):
            cluster_detections([det(0, 0, 0)], 16, max_gap=(-1, 0, 0))

    def test_single_detection(self):
        reps = cluster_detections([det(3, 1, 100, snr=12.0)], 16)
        assert len(reps) == 1
        r = reps[0]
        assert (r.doppler_bin, r.beam, r.range_gate) == (3, 1, 100)
        assert r.n_cells == 1 and r.extent == (0, 0, 0)

    def test_straddle_merges_to_strongest(self):
        dets = [
            det(3, 1, 100, snr=18.0),
            det(4, 1, 100, snr=21.0),   # strongest
            det(5, 1, 100, snr=17.0),
            det(4, 2, 100, snr=15.0),
            det(4, 1, 101, snr=14.0),
        ]
        reps = cluster_detections(dets, 32)
        assert len(reps) == 1
        r = reps[0]
        assert (r.doppler_bin, r.beam, r.range_gate) == (4, 1, 100)
        assert r.snr_db == 21.0 and r.n_cells == 5
        assert r.extent == (2, 1, 1)

    def test_distant_targets_stay_separate(self):
        dets = [det(2, 0, 50), det(20, 3, 200)]
        reps = cluster_detections(dets, 32)
        assert len(reps) == 2

    def test_doppler_wraparound_merges(self):
        dets = [det(31, 0, 50), det(0, 0, 50)]
        reps = cluster_detections(dets, 32)
        assert len(reps) == 1 and reps[0].extent[0] == 1

    def test_range_gap_respected(self):
        a, b = det(0, 0, 50), det(0, 0, 53)
        assert len(cluster_detections([a, b], 16, max_gap=(1, 1, 2))) == 2
        assert len(cluster_detections([a, b], 16, max_gap=(1, 1, 3))) == 1

    def test_chained_merging(self):
        """Transitive closure: a-b close, b-c close => one cluster."""
        dets = [det(0, 0, 50), det(0, 0, 52), det(0, 0, 54)]
        reps = cluster_detections(dets, 16, max_gap=(0, 0, 2))
        assert len(reps) == 1 and reps[0].n_cells == 3

    def test_cpis_never_merge(self):
        dets = [det(0, 0, 50, cpi=0), det(0, 0, 50, cpi=1)]
        assert len(cluster_detections(dets, 16)) == 2

    def test_reports_sorted(self):
        dets = [det(9, 0, 10, cpi=1), det(1, 0, 10, cpi=0), det(5, 0, 10, cpi=0)]
        reps = cluster_detections(dets, 32)
        keys = [(r.cpi_index, r.doppler_bin) for r in reps]
        assert keys == sorted(keys)

    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 3), st.integers(0, 100)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_property(self, cells):
        """Clusters partition the detections: sizes sum to the input."""
        dets = [det(b, k, r) for b, k, r in cells]
        reps = cluster_detections(dets, 16)
        assert sum(r.n_cells for r in reps) == len(dets)
        assert 1 <= len(reps) <= len(dets)

    def test_end_to_end_one_report_per_target(self, small_params):
        """The standard scene's straddle collapses to one report per
        target per CPI."""

        from repro.stap.chain import run_cpi_stream
        from repro.stap.scenario import Scenario, make_cube

        sc = Scenario.standard(small_params, seed=7)
        cubes = [make_cube(small_params, sc, k) for k in range(3)]
        results = run_cpi_stream(cubes, small_params)
        for res in results[1:]:
            reps = cluster_detections(res.detections, small_params.n_doppler_bins)
            # Exactly the two injected targets (no spurious clusters
            # within a couple of cells of them, and few elsewhere).
            target_reps = [
                r
                for r in reps
                for t in sc.targets
                if abs(r.range_gate - t.range_gate) <= 2
            ]
            assert len(target_reps) == 2
