"""Tests for Doppler filter processing with PRI stagger."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stap.datacube import DataCube
from repro.stap.doppler import (
    bin_frequency,
    doppler_filter_arrays,
    doppler_process,
    doppler_window,
)
from repro.stap.scenario import Scenario, Target, make_cube, temporal_steering


class TestWindow:
    def test_hann_endpoints_zero(self):
        w = doppler_window(8)
        assert w[0] == pytest.approx(0.0) and w[-1] == pytest.approx(0.0)

    def test_hann_peak_in_middle(self):
        w = doppler_window(9)
        assert w[4] == pytest.approx(1.0)

    def test_length_one(self):
        assert doppler_window(1).tolist() == [1.0]

    def test_invalid_length(self):
        with pytest.raises(ConfigurationError):
            doppler_window(0)


class TestBinFrequency:
    def test_dc(self):
        assert bin_frequency(0, 16) == 0.0

    def test_wraps_to_negative(self):
        assert bin_frequency(15, 16) == pytest.approx(-1 / 16)

    def test_range(self):
        for b in range(32):
            f = bin_frequency(b, 32)
            assert -0.5 <= f < 0.5


class TestDopplerProcess:
    def test_output_shapes(self, tiny_params):
        p = tiny_params
        cube = make_cube(p, Scenario.standard(p), 0)
        out = doppler_process(cube, p)
        assert out.easy.shape == (p.n_easy_bins, p.n_channels, p.n_ranges)
        assert out.hard.shape == (p.n_hard_bins, 2 * p.n_channels, p.n_ranges)
        assert out.cpi_index == 0

    def test_shape_mismatch_rejected(self, tiny_params):
        bad = DataCube(np.zeros((2, 4, 8), np.complex64))
        with pytest.raises(ConfigurationError):
            doppler_process(bad, tiny_params)

    def test_target_energy_peaks_in_its_bin(self, tiny_params):
        p = tiny_params
        b_target = p.easy_bins[len(p.easy_bins) // 2]
        f = bin_frequency(b_target, p.n_pulses)
        sc = Scenario(
            targets=(Target(range_gate=10, doppler=f, angle=0.0, snr_db=20.0),),
            jammers=(),
            cnr_db=float("-inf"),
        )
        cube = make_cube(p, sc, 0)
        out = doppler_process(cube, p)
        # Energy per bin over the target's range extent.
        all_bins = np.zeros(p.n_pulses)
        for row, b in enumerate(out.easy_bins):
            all_bins[b] = np.sum(np.abs(out.easy[row][:, 10 : 10 + p.pulse_len]) ** 2)
        for row, b in enumerate(out.hard_bins):
            all_bins[b] = np.sum(
                np.abs(out.hard[row][: p.n_channels, 10 : 10 + p.pulse_len]) ** 2
            )
        assert np.argmax(all_bins) == b_target

    def test_stagger_phase_relation(self, tiny_params):
        """Second sub-CPI equals the first advanced by one PRI of phase."""
        p = tiny_params
        J, N, R = p.cube_shape
        f = bin_frequency(p.hard_bins[1], N)
        # Pure tone at an exact bin frequency, constant across channels/ranges.
        tone = temporal_steering(f, N)
        data = np.broadcast_to(tone[None, :, None], (J, N, R)).astype(np.complex64)
        out = doppler_process(DataCube(data.copy()), p)
        row = out.hard_bins.index(p.hard_bins[1])
        xa = out.hard[row][:J]
        xb = out.hard[row][J:]
        expect = np.exp(2j * np.pi * f)
        ratio = xb[np.abs(xa) > 1e-3] / xa[np.abs(xa) > 1e-3]
        assert np.allclose(ratio, expect, atol=1e-3)

    def test_slab_equals_full_columns(self, tiny_params):
        p = tiny_params
        cube = make_cube(p, Scenario.standard(p), 1)
        full_easy, full_hard = doppler_filter_arrays(cube.data, p)
        lo, hi = 7, 21
        slab_easy, slab_hard = doppler_filter_arrays(cube.data[:, :, lo:hi], p)
        assert np.allclose(slab_easy, full_easy[:, :, lo:hi], atol=1e-5)
        assert np.allclose(slab_hard, full_hard[:, :, lo:hi], atol=1e-5)

    def test_slab_shape_validation(self, tiny_params):
        with pytest.raises(ConfigurationError):
            doppler_filter_arrays(np.zeros((1, 2, 3), np.complex64), tiny_params)

    def test_nbytes(self, tiny_params):
        p = tiny_params
        cube = make_cube(p, Scenario.standard(p), 0)
        out = doppler_process(cube, p)
        assert out.nbytes == out.easy.nbytes + out.hard.nbytes
        assert out.n_ranges == p.n_ranges
