"""Tests for the CPI data cube container and file layouts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.mpi.datatypes import Phantom
from repro.stap.datacube import DataCube
from repro.stap.params import STAPParams


def tiny(J=4, N=8, R=32):
    return STAPParams(
        n_channels=J, n_pulses=N, n_ranges=R, n_beams=2, n_hard_bins=2,
        n_training=R // 2 if R // 2 >= 2 * J else 2 * J, pulse_len=4,
        cfar_window=4, cfar_guard=1,
    )


def random_cube(params, seed=0):
    rng = np.random.default_rng(seed)
    data = (
        rng.standard_normal(params.cube_shape) + 1j * rng.standard_normal(params.cube_shape)
    ).astype(params.dtype)
    return DataCube(data, cpi_index=3)


class TestContainer:
    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            DataCube(np.zeros((4, 4), np.complex64))

    def test_rejects_real_dtype(self):
        with pytest.raises(ConfigurationError):
            DataCube(np.zeros((2, 2, 2), np.float32))

    def test_shape_accessors(self):
        c = random_cube(tiny())
        assert (c.n_channels, c.n_pulses, c.n_ranges) == (4, 8, 32)
        assert c.nbytes == 4 * 8 * 32 * 8

    def test_range_slab_view(self):
        c = random_cube(tiny())
        slab = c.range_slab(4, 10)
        assert slab.shape == (4, 8, 6)
        assert np.shares_memory(slab, c.data)

    def test_range_slab_bounds_check(self):
        c = random_cube(tiny())
        with pytest.raises(ConfigurationError):
            c.range_slab(10, 4)


class TestSerialisation:
    def test_to_bytes_roundtrip(self):
        p = tiny()
        c = random_cube(p)
        back = DataCube.from_bytes(c.to_bytes(), p, cpi_index=3)
        assert np.array_equal(back.data, c.data)
        assert back.cpi_index == 3

    def test_from_bytes_size_check(self):
        p = tiny()
        with pytest.raises(ConfigurationError):
            DataCube.from_bytes(b"short", p)

    def test_from_bytes_phantom_passthrough(self):
        out = DataCube.from_bytes(Phantom(99), tiny())
        assert isinstance(out, Phantom)

    def test_file_layout_roundtrip_full(self):
        p = tiny()
        c = random_cube(p)
        raw = c.to_file_bytes()
        slab = DataCube.slab_from_file_bytes(raw, p, 0, p.n_ranges)
        assert np.array_equal(slab, c.data)

    @given(st.integers(0, 31), st.integers(0, 31))
    @settings(max_examples=40, deadline=None)
    def test_file_slab_matches_cube_slice(self, a, b):
        lo, hi = min(a, b), max(a, b) + 1
        p = tiny()
        c = random_cube(p, seed=7)
        raw = c.to_file_bytes()
        off, ln = DataCube.file_slab_extent(p, lo, hi)
        slab = DataCube.slab_from_file_bytes(raw[off : off + ln], p, lo, hi)
        assert np.array_equal(slab, c.data[:, :, lo:hi])

    def test_slab_extents_tile_the_file(self):
        p = tiny()
        parts = 5
        from repro.core.partition import BlockPartition

        bp = BlockPartition(p.n_ranges, parts)
        extents = [DataCube.file_slab_extent(p, *bp.bounds(i)) for i in range(parts)]
        pos = 0
        for off, ln in extents:
            assert off == pos
            pos += ln
        assert pos == p.cube_nbytes

    def test_slab_bytes_size_check(self):
        p = tiny()
        with pytest.raises(ConfigurationError):
            DataCube.slab_from_file_bytes(b"x", p, 0, 4)

    def test_slab_extent_bounds_check(self):
        with pytest.raises(ConfigurationError):
            DataCube.file_slab_extent(tiny(), 5, 2)

    def test_slab_phantom_passthrough(self):
        out = DataCube.slab_from_file_bytes(Phantom(10), tiny(), 0, 4)
        assert isinstance(out, Phantom)
