"""End-to-end tests for the serial golden chain."""

import numpy as np

from repro.stap.chain import assemble_bins, run_cpi_stream, stap_chain
from repro.stap.scenario import Scenario, make_cube


def expected_cells(params, scenario):
    """(bin, beam, range) cells where each target should appear."""
    out = []
    for t in scenario.targets:
        b = round(t.doppler * params.n_pulses) % params.n_pulses
        beam = int(np.argmin(np.abs(params.beam_angles - t.angle)))
        out.append((b, beam, t.range_gate))
    return out


class TestAssembleBins:
    def test_interleaves_by_label(self):
        easy = np.full((3, 2), 1.0)
        hard = np.full((2, 2), 2.0)
        out = assemble_bins(easy, hard, (0, 2, 4), (1, 3), 5)
        assert out[:, 0].tolist() == [1.0, 2.0, 1.0, 2.0, 1.0]

    def test_shape(self):
        easy = np.zeros((3, 4, 8))
        hard = np.zeros((2, 4, 8))
        out = assemble_bins(easy, hard, (0, 1, 2), (3, 4), 5)
        assert out.shape == (5, 4, 8)


class TestChain:
    def test_detects_both_targets_steady_state(self, small_params):
        sc = Scenario.standard(small_params, seed=7)
        cubes = [make_cube(small_params, sc, k) for k in range(3)]
        results = run_cpi_stream(cubes, small_params)
        for res in results[1:]:  # steady state (adaptive weights)
            cells = {(d.doppler_bin, d.beam, d.range_gate) for d in res.detections}
            for cell in expected_cells(small_params, sc):
                assert cell in cells, f"missing target at {cell} in CPI {res.cpi_index}"

    def test_false_alarms_are_rare(self, small_params):
        sc = Scenario.standard(small_params, seed=7)
        cubes = [make_cube(small_params, sc, k) for k in range(3)]
        results = run_cpi_stream(cubes, small_params)
        expect = set(expected_cells(small_params, sc))
        for res in results[1:]:
            spurious = [
                d
                for d in res.detections
                if all(
                    abs(d.doppler_bin - b) > 2
                    or abs(d.beam - k) > 1
                    or abs(d.range_gate - r) > 2
                    for b, k, r in expect
                )
            ]
            # CFAR design rate allows the occasional isolated exceedance.
            assert len(spurious) <= 2

    def test_first_cpi_uses_quiescent_weights(self, small_params):
        sc = Scenario.standard(small_params, seed=7)
        cube = make_cube(small_params, sc, 0)
        res = stap_chain(cube, small_params, prev_doppler=None)
        assert res.weights_easy.from_cpi == -1
        assert res.weights_hard.from_cpi == -1

    def test_adaptive_beats_quiescent_under_jamming(self, small_params):
        """The whole point of STAP: adaptive weights recover targets the
        quiescent beamformer loses under jamming + clutter."""
        sc = Scenario.standard(small_params, seed=11)
        cubes = [make_cube(small_params, sc, k) for k in range(2)]
        res0 = stap_chain(cubes[0], small_params, prev_doppler=None)
        res1 = stap_chain(cubes[1], small_params, prev_doppler=res0.doppler)
        cells0 = {(d.doppler_bin, d.beam, d.range_gate) for d in res0.detections}
        cells1 = {(d.doppler_bin, d.beam, d.range_gate) for d in res1.detections}
        expect = set(expected_cells(small_params, sc))
        assert expect <= cells1
        assert len(expect & cells1) > len(expect & cells0)

    def test_intermediates_shapes(self, small_params):
        p = small_params
        sc = Scenario.standard(p)
        res = stap_chain(make_cube(p, sc, 0), p)
        assert res.beams.shape == (p.n_doppler_bins, p.n_beams, p.n_ranges)
        assert res.compressed.shape == res.beams.shape

    def test_stream_threads_temporal_dependency(self, small_params):
        sc = Scenario.standard(small_params)
        cubes = [make_cube(small_params, sc, k) for k in range(3)]
        results = run_cpi_stream(cubes, small_params)
        assert results[0].weights_easy.from_cpi == -1
        assert results[1].weights_easy.from_cpi == 0
        assert results[2].weights_easy.from_cpi == 1
