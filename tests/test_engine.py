"""Tests for the declarative experiment engine (spec / runner / store)."""

import json
import os
import time

import pytest

from repro.bench.engine import (
    DiskFault,
    ExperimentSpec,
    FlakyDisk,
    NodeFault,
    ServerCrash,
    SweepRunner,
    WriterLoad,
    machine_key,
    run_spec,
)
from repro.bench.store import ResultStore
from repro.core.context import ExecutionConfig
from repro.errors import ConfigurationError
from repro.core.executor import FSConfig
from repro.core.pipeline import NodeAssignment
from repro.machine.presets import generic_cluster, ibm_sp, paragon
from repro.stap.params import STAPParams

FAST = ExecutionConfig(n_cpis=4, warmup=1)

# Pinned content address of a fully-default spec (case-1 assignment,
# n_cpis=3, warmup=1).  If this test fails, the canonical serialization
# changed: bump SPEC_SCHEMA in repro.bench.engine so old cache entries
# are invalidated rather than silently mismatched.
GOLDEN_SPEC_HASH = (
    "94489719052af6c49981f091e00fb382c5bea34036b123a9254682ba0691c1dc"
)


def small_spec(small_params, **kw):
    kw.setdefault("assignment", NodeAssignment.balanced(small_params, 14))
    kw.setdefault("fs", FSConfig("pfs", 8))
    kw.setdefault("params", small_params)
    kw.setdefault("cfg", FAST)
    return ExperimentSpec(**kw)


class TestSpec:
    def test_golden_hash_pinned(self):
        spec = ExperimentSpec(
            assignment=NodeAssignment.case(1, STAPParams()),
            cfg=ExecutionConfig(n_cpis=3, warmup=1),
        )
        assert spec.spec_hash() == GOLDEN_SPEC_HASH
        assert spec.short_hash() == GOLDEN_SPEC_HASH[:12]

    def test_canonical_json_is_sorted_and_compact(self):
        spec = ExperimentSpec(assignment=NodeAssignment.case(1, STAPParams()))
        text = spec.canonical_json()
        assert ": " not in text and ", " not in text
        d = json.loads(text)
        assert list(d) == sorted(d)
        assert d["schema"] == 1

    def test_round_trip(self, small_params):
        spec = small_spec(
            small_params,
            pipeline="combined",
            machine="sp",
            seed=7,
            disk_fault=DiskFault(server=1, slow_factor=4.0),
            node_fault=NodeFault(node=2, slow_factor=2.0),
            writer=WriterLoad(period=0.5, n_cpis=4, start_cpi=2,
                              initial_delay=0.25),
            server_crash=ServerCrash(server=1, at_time=0.5, down_for=2.0),
            flaky_disk=FlakyDisk(server=2, error_rate=0.1, seed=3),
        )
        clone = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()

    def test_every_field_perturbs_the_hash(self, small_params):
        from dataclasses import replace

        base = small_spec(small_params)
        variants = [
            replace(base, pipeline="separate"),
            replace(base, machine="sp"),
            replace(base, fs=FSConfig("pfs", 16)),
            replace(base, cfg=ExecutionConfig(n_cpis=5, warmup=1)),
            replace(base, seed=1),
            replace(base, disk_fault=DiskFault(slow_factor=2.0)),
            replace(base, node_fault=NodeFault(slow_factor=2.0)),
            replace(base, writer=WriterLoad(period=1.0, n_cpis=2)),
            replace(base, server_crash=ServerCrash(at_time=1.0)),
            replace(base, flaky_disk=FlakyDisk(error_rate=0.05)),
            replace(base, fs=FSConfig("pfs", 8, replication=2)),
            replace(base, cfg=ExecutionConfig(n_cpis=4, warmup=1,
                                              read_deadline=2.0)),
        ]
        hashes = {base.spec_hash()} | {v.spec_hash() for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_fault_free_spec_serializes_without_fault_keys(self, small_params):
        # Hash-stability contract: the new fault/replication/deadline
        # fields must be invisible in the canonical form when unset, so
        # every pre-existing golden spec hash survives the upgrade.
        d = small_spec(small_params).to_dict()
        for key in ("server_crash", "flaky_disk"):
            assert key not in d
        assert "replication" not in d["fs"]
        assert "read_deadline" not in d["cfg"]

    def test_fault_validation(self):
        with pytest.raises(ConfigurationError):
            ServerCrash(server=-1)
        with pytest.raises(ConfigurationError):
            ServerCrash(at_time=-0.5)
        with pytest.raises(ConfigurationError):
            ServerCrash(down_for=0.0)
        with pytest.raises(ConfigurationError):
            FlakyDisk(error_rate=1.5)
        with pytest.raises(ConfigurationError):
            FlakyDisk(error_rate=-0.1)

    def test_fault_server_index_checked_against_machine(self, small_params):
        spec = small_spec(small_params,
                          server_crash=ServerCrash(server=99, at_time=1.0))
        with pytest.raises(ConfigurationError, match="server_crash"):
            run_spec(spec)
        spec = small_spec(small_params,
                          flaky_disk=FlakyDisk(server=99, error_rate=0.1))
        with pytest.raises(ConfigurationError, match="flaky_disk"):
            run_spec(spec)

    def test_unknown_pipeline_and_machine_rejected(self, small_params):
        with pytest.raises(ConfigurationError, match="unknown pipeline"):
            small_spec(small_params, pipeline="bogus")
        with pytest.raises(ConfigurationError, match="unknown machine"):
            small_spec(small_params, machine="cray")

    def test_machine_key_round_trips_presets(self):
        assert machine_key(paragon()) == "paragon"
        assert machine_key(ibm_sp()) == "sp"
        assert machine_key(generic_cluster()) == "generic"

    def test_machine_key_unknown_preset(self):
        from dataclasses import replace

        weird = replace(paragon(), name="CM-5")
        with pytest.raises(ConfigurationError, match="CM-5"):
            machine_key(weird)

    def test_label_mentions_faults(self, small_params):
        spec = small_spec(small_params, disk_fault=DiskFault(slow_factor=3.0))
        assert "disk[0] x3" in spec.label()

    def test_label_mentions_crash_and_flaky(self, small_params):
        spec = small_spec(
            small_params,
            server_crash=ServerCrash(server=1, at_time=2.0, down_for=3.0),
            flaky_disk=FlakyDisk(server=0, error_rate=0.05),
        )
        label = spec.label()
        assert "crash[1] @2s for 3s" in label
        assert "flaky[0] p=0.05" in label
        permanent = small_spec(
            small_params, server_crash=ServerCrash(server=0, at_time=1.0)
        )
        assert "forever" in permanent.label()


class TestRunSpec:
    def test_deterministic(self, small_params):
        spec = small_spec(small_params)
        a = run_spec(spec).to_dict()
        b = run_spec(spec).to_dict()
        assert a == b

    def test_result_carries_config(self, small_params):
        res = run_spec(small_spec(small_params))
        assert res.throughput > 0
        assert res.fs_label == "PFS sf=8"
        assert res.machine_name == "Intel Paragon"

    def test_seeded_compute_spec_is_deterministic(self, tiny_params):
        spec = ExperimentSpec(
            assignment=NodeAssignment.balanced(tiny_params, 14),
            fs=FSConfig("pfs", 8),
            params=tiny_params,
            cfg=ExecutionConfig(n_cpis=2, warmup=0, compute=True),
            seed=123,
        )
        a = run_spec(spec)
        b = run_spec(spec)
        assert a.to_dict() == b.to_dict()
        assert a.detections is not None

    def test_fault_run_deterministic_and_surfaces_fault_stats(self, small_params):
        spec = small_spec(
            small_params,
            fs=FSConfig("pfs", 8, replication=2),
            cfg=ExecutionConfig(n_cpis=4, warmup=1, read_deadline=5.0),
            server_crash=ServerCrash(server=0, at_time=0.1, down_for=0.5),
        )
        a = run_spec(spec)
        b = run_spec(spec)
        assert a.to_dict() == b.to_dict()
        assert a.disk_stats["outages_per_server"][0] == 1
        assert a.dropped_cpis is not None  # list (possibly empty): deadline set

    def test_fault_free_result_omits_fault_surface(self, small_params):
        res = run_spec(small_spec(small_params))
        assert res.dropped_cpis is None
        assert "outages_per_server" not in res.disk_stats
        assert "dropped_cpis" not in res.to_dict()


class TestSweepRunner:
    def test_jobs_validated(self):
        with pytest.raises(ConfigurationError, match="jobs"):
            SweepRunner(jobs=0)

    def test_in_run_dedup(self, small_params):
        spec = small_spec(small_params)
        runner = SweepRunner(jobs=1)
        r1, r2 = runner.run([spec, spec])
        assert runner.executed == 1
        assert r1.to_dict() == r2.to_dict()

    def test_parallel_matches_serial(self, small_params):
        specs = [
            small_spec(small_params),
            small_spec(small_params, pipeline="combined"),
        ]
        serial = [r.to_dict() for r in SweepRunner(jobs=1).run(specs)]
        parallel = [r.to_dict() for r in SweepRunner(jobs=2).run(specs)]
        assert serial == parallel

    def test_cache_hits(self, small_params, tmp_path):
        spec = small_spec(small_params)
        store = ResultStore(tmp_path / "cache")
        cold = SweepRunner(jobs=1, store=store)
        first = cold.run_one(spec)
        assert (cold.executed, cold.cache_hits, cold.cache_misses) == (1, 0, 1)

        warm = SweepRunner(jobs=1, store=store)
        second = warm.run_one(spec)
        assert (warm.executed, warm.cache_hits, warm.cache_misses) == (0, 1, 0)
        assert first.to_dict() == second.to_dict()

    def test_cached_render_is_byte_identical(self, small_params, tmp_path):
        # The acceptance bar: a cache-served result renders exactly the
        # same text as the freshly simulated one.
        from repro.bench.cases import BenchCase
        from repro.bench.experiments import CellResult, ExperimentResult

        spec = small_spec(small_params)
        store = ResultStore(tmp_path / "cache")

        def render(result):
            case = BenchCase(1, 14, spec.assignment, paragon(), spec.fs)
            return ExperimentResult(
                name="t", cells=[CellResult(case, result)]
            ).render()

        fresh = render(SweepRunner(jobs=1, store=store).run_one(spec))
        cached = render(SweepRunner(jobs=1, store=store).run_one(spec))
        assert fresh == cached


class TestResultStore:
    def test_round_trip(self, small_params, tmp_path):
        spec = small_spec(small_params)
        store = ResultStore(tmp_path / "cache")
        result = run_spec(spec)
        path = store.put(spec, result)
        assert path.exists()
        assert spec in store and len(store) == 1
        assert store.get(spec).to_dict() == result.to_dict()

    def test_corrupt_entry_is_a_miss(self, small_params, tmp_path):
        spec = small_spec(small_params)
        store = ResultStore(tmp_path / "cache")
        store.put(spec, run_spec(spec))
        store.path_for(spec.spec_hash()).write_text("{not json")
        assert store.get(spec) is None

    def test_spec_mismatch_is_a_miss(self, small_params, tmp_path):
        # A hash collision (or hand-edited entry) must never serve a
        # result for the wrong spec: the embedded spec is verified.
        spec = small_spec(small_params)
        other = small_spec(small_params, pipeline="combined")
        store = ResultStore(tmp_path / "cache")
        store.put(spec, run_spec(spec))
        payload = json.loads(store.path_for(spec.spec_hash()).read_text())
        store.path_for(other.spec_hash()).write_text(json.dumps(payload))
        assert store.get(other) is None

    def test_stale_substrate_is_a_miss(self, small_params, tmp_path, monkeypatch):
        # Satellite fix: editing the simulator must invalidate cached
        # results instead of silently serving stale physics.
        import repro.bench.store as store_mod

        spec = small_spec(small_params)
        store = ResultStore(tmp_path / "cache")
        store.put(spec, run_spec(spec))
        assert store.get(spec) is not None
        # Simulate "a substrate file changed since this entry was written":
        # the running process now computes a different fingerprint.
        monkeypatch.setattr(store_mod, "_fingerprint_cache", "f" * 64)
        assert store.get(spec) is None

    def test_fingerprint_tracks_substrate_bytes_and_schema(self, tmp_path):
        from repro.bench.store import _compute_fingerprint

        f = tmp_path / "kernel.py"
        f.write_text("a = 1\n")
        before = _compute_fingerprint([f], 1)
        f.write_text("a = 2\n")
        after = _compute_fingerprint([f], 1)
        assert before != after
        assert _compute_fingerprint([f], 2) != after  # schema folds in too

    def test_substrate_fingerprint_memoized(self):
        from repro.bench.store import substrate_fingerprint

        a = substrate_fingerprint()
        assert a == substrate_fingerprint()
        assert len(a) == 64

    def test_entries_and_clear(self, small_params, tmp_path):
        spec = small_spec(small_params)
        store = ResultStore(tmp_path / "cache")
        store.put(spec, run_spec(spec))
        (entry,) = store.entries()
        assert entry["hash"] == spec.spec_hash()
        assert entry["pipeline"] == "embedded"
        assert entry["throughput"] > 0
        assert store.clear() == 1
        assert len(store) == 0

    def test_entries_carry_size_and_mtime(self, small_params, tmp_path):
        spec = small_spec(small_params)
        store = ResultStore(tmp_path / "cache")
        store.put(spec, run_spec(spec))
        (entry,) = store.entries()
        assert entry["size_bytes"] == store.path_for(
            spec.spec_hash()).stat().st_size
        assert entry["size_bytes"] > 0
        assert entry["mtime"] > 0

    def test_summary_totals(self, small_params, tmp_path):
        from repro.bench.store import STORE_SCHEMA

        store = ResultStore(tmp_path / "cache")
        assert store.summary() == {
            "entries": 0, "total_bytes": 0, "schema": STORE_SCHEMA,
        }
        for seed in (0, 1):
            spec = small_spec(small_params, seed=seed)
            store.put(spec, run_spec(spec))
        s = store.summary()
        assert s["entries"] == 2
        assert s["total_bytes"] == sum(
            e["size_bytes"] for e in store.entries()
        )


class TestStoreConcurrentWriters:
    """Satellite: first-write-wins puts and orphaned-tmp cleanup."""

    def test_first_write_wins_skips_rewrite(self, small_params, tmp_path):
        spec = small_spec(small_params)
        store = ResultStore(tmp_path / "cache")
        result = run_spec(spec)
        target = store.put(spec, result)
        stamp = (target.stat().st_mtime_ns, target.stat().st_ino)
        store.put(spec, result)   # concurrent-writer replay: no-op
        assert (target.stat().st_mtime_ns, target.stat().st_ino) == stamp
        assert store.get(spec).to_dict() == result.to_dict()

    def test_stale_entry_is_overwritten(self, small_params, tmp_path):
        # First-write-wins applies only to *valid* entries: an entry
        # with an outdated substrate fingerprint must be replaced.
        spec = small_spec(small_params)
        store = ResultStore(tmp_path / "cache")
        result = run_spec(spec)
        target = store.put(spec, result)
        payload = json.loads(target.read_text())
        payload["substrate"] = "f" * 64
        target.write_text(json.dumps(payload))
        store.put(spec, result)
        assert store.get(spec) is not None

    def test_concurrent_puts_from_processes(self, small_params, tmp_path):
        # Many writers, one hash: all must succeed and the entry must
        # be valid afterwards (atomic rename, identical content).
        import multiprocessing

        spec = small_spec(small_params)
        store = ResultStore(tmp_path / "cache")
        result = run_spec(spec)
        ctx = multiprocessing.get_context()
        procs = [
            ctx.Process(target=_put_once,
                        args=(str(tmp_path / "cache"), spec.to_dict(),
                              result.to_dict()))
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        assert store.get(spec).to_dict() == result.to_dict()
        assert list((tmp_path / "cache").glob("*.tmp")) == []

    def test_orphaned_tmp_swept_on_open(self, small_params, tmp_path):
        # Satellite regression: a temp file left by a kill -9'd writer
        # is removed when the store is next opened; fresh temps (live
        # writers) are left alone.
        root = tmp_path / "cache"
        root.mkdir()
        orphan = root / ".deadbeef.json.12345.1.tmp"
        orphan.write_text("{truncated")
        old = time.time() - 3600
        os.utime(orphan, (old, old))
        fresh = root / ".cafef00d.json.99999.2.tmp"
        fresh.write_text("{in-progress")

        store = ResultStore(root)
        assert not orphan.exists()
        assert fresh.exists()
        # and the store works normally afterwards
        spec = small_spec(small_params)
        store.put(spec, run_spec(spec))
        assert spec in store

    def test_sweep_orphans_returns_count(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        store = ResultStore(root)   # opened before the writer died
        for i in range(3):
            p = root / f".h{i}.json.1.{i}.tmp"
            p.write_text("x")
            os.utime(p, (1, 1))
        assert store.sweep_orphans() == 3
        assert store.sweep_orphans() == 0


def _put_once(root, spec_dict, result_dict):
    from repro.bench.engine import ExperimentSpec
    from repro.bench.store import ResultStore

    ResultStore(root).put_dict(ExperimentSpec.from_dict(spec_dict),
                               result_dict)


class TestDriverReuse:
    def test_table4_and_fig8_reuse_warm_store(self, small_params, tmp_path):
        from repro.bench.experiments import (
            run_fig8,
            run_table1,
            run_table3,
            run_table4,
        )

        store = ResultStore(tmp_path / "cache")
        warmup = SweepRunner(jobs=1, store=store)
        run_table1(small_params, FAST, runner=warmup)
        run_table3(small_params, FAST, runner=warmup)
        assert warmup.executed == 18

        warm = SweepRunner(jobs=1, store=store)
        t4 = run_table4(small_params, FAST, runner=warm)
        fig8 = run_fig8(small_params, FAST, runner=warm)
        assert warm.executed == 0
        assert warm.cache_hits == 36      # both drivers re-read the grids
        assert t4.improvements
        assert fig8.render()

    def test_cell_keyerror_lists_available(self, small_params):
        from repro.bench.experiments import run_table1

        exp = run_table1(small_params, FAST)
        with pytest.raises(KeyError) as exc:
            exp.cell("PFS sf=999", 1)
        msg = str(exc.value)
        assert "PFS sf=999" in msg
        assert "available" in msg and "PFS sf=16" in msg
