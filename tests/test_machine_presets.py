"""Tests for machine presets and the Machine container."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.machine import Machine
from repro.machine.mesh import MeshNetwork
from repro.machine.multistage import MultistageNetwork
from repro.machine.network import ContentionFreeNetwork
from repro.machine.node import NodeSpec
from repro.machine.presets import generic_cluster, ibm_sp, paragon


class TestPresets:
    def test_paragon_is_mesh(self, kernel):
        m = paragon().build(kernel, n_compute=9, n_io=2)
        assert isinstance(m.network, MeshNetwork)
        assert m.n_compute == 9 and m.n_io == 2

    def test_sp_is_multistage(self, kernel):
        m = ibm_sp().build(kernel, n_compute=4)
        assert isinstance(m.network, MultistageNetwork)

    def test_generic_is_contention_free(self, kernel):
        m = generic_cluster().build(kernel, n_compute=4)
        assert isinstance(m.network, ContentionFreeNetwork)

    def test_sp_cpu_faster_than_paragon(self):
        assert ibm_sp().node_spec.flops > 3 * paragon().node_spec.flops

    def test_network_covers_io_nodes(self, kernel):
        m = paragon().build(kernel, n_compute=5, n_io=7)
        assert m.network.n_nodes >= 12

    def test_unknown_network_kind(self, kernel):
        from dataclasses import replace

        bad = replace(paragon(), network_kind="quantum")
        with pytest.raises(ConfigurationError):
            bad.build(kernel, 4)


class TestMachine:
    def test_io_node_addressing(self, kernel):
        m = generic_cluster().build(kernel, n_compute=6, n_io=3)
        assert m.n_total == 9
        assert m.io_node_id(0) == 6
        assert m.io_node_id(2) == 8
        assert m.is_io_node(7) and not m.is_io_node(5)

    def test_io_index_out_of_range(self, kernel):
        m = generic_cluster().build(kernel, n_compute=4, n_io=2)
        with pytest.raises(ConfigurationError):
            m.io_node_id(2)

    def test_node_lookup(self, kernel):
        m = generic_cluster().build(kernel, n_compute=4)
        assert m.node(3).node_id == 3
        with pytest.raises(ConfigurationError):
            m.node(4)

    def test_undersized_network_rejected(self, kernel):
        net = ContentionFreeNetwork(kernel, 3, 1e-5, 1e8)
        with pytest.raises(ConfigurationError):
            Machine(kernel, 4, NodeSpec(1e6, 1e6), net)

    def test_needs_a_compute_node(self, kernel):
        net = ContentionFreeNetwork(kernel, 4, 1e-5, 1e8)
        with pytest.raises(ConfigurationError):
            Machine(kernel, 0, NodeSpec(1e6, 1e6), net)
