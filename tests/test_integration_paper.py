"""Integration tests asserting the paper's headline findings.

These run the actual evaluation configurations (full-size cubes, the
reconstructed 25/50/100-node cases) in timing mode — a few seconds of
wall time per case.  The full 3 x 3 grids live in ``benchmarks/``; here
we spot-check each finding on the cells that demonstrate it.
"""

import pytest

from repro.bench.experiments import run_single
from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig
from repro.core.pipeline import (
    NodeAssignment,
    build_embedded_pipeline,
    build_separate_io_pipeline,
    combine_pulse_cfar,
)
from repro.machine.presets import ibm_sp, paragon
from repro.stap.params import STAPParams

CFG = ExecutionConfig(n_cpis=8, warmup=2)
PARAMS = STAPParams()


def run_case(case, builder=build_embedded_pipeline, preset=None, fs=None, cfg=CFG):
    spec = builder(NodeAssignment.case(case, PARAMS))
    return run_single(spec, preset or paragon(), fs or FSConfig("pfs", 64), PARAMS, cfg)


@pytest.fixture(scope="module")
def results():
    """Shared grid of the runs the assertions need (computed once)."""
    out = {}
    out["sf16_c1"] = run_case(1, fs=FSConfig("pfs", 16))
    out["sf16_c3"] = run_case(3, fs=FSConfig("pfs", 16))
    out["sf64_c1"] = run_case(1, fs=FSConfig("pfs", 64))
    out["sf64_c3"] = run_case(3, fs=FSConfig("pfs", 64))
    out["sep_sf64_c1"] = run_case(
        1, builder=build_separate_io_pipeline, fs=FSConfig("pfs", 64)
    )
    out["comb_sf64_c1"] = run_case(
        1,
        builder=lambda a: combine_pulse_cfar(build_embedded_pipeline(a)),
        fs=FSConfig("pfs", 64),
    )
    out["comb_sf64_c3"] = run_case(
        3,
        builder=lambda a: combine_pulse_cfar(build_embedded_pipeline(a)),
        fs=FSConfig("pfs", 64),
    )
    out["sp_c1"] = run_case(1, preset=ibm_sp(), fs=FSConfig("piofs", 80))
    out["sp_c3"] = run_case(3, preset=ibm_sp(), fs=FSConfig("piofs", 80))
    return out


class TestFinding1_StripeFactorBottleneck:
    """§5.1: small stripe factor -> I/O bottleneck at 100 nodes."""

    def test_sf16_throughput_degrades_at_case3(self, results):
        assert results["sf16_c3"].throughput < 0.75 * results["sf64_c3"].throughput

    def test_sf16_and_sf64_equal_at_case1(self, results):
        r16, r64 = results["sf16_c1"], results["sf64_c1"]
        assert r16.throughput == pytest.approx(r64.throughput, rel=0.05)

    def test_read_phase_dominates_doppler_in_bottleneck(self, results):
        d = results["sf16_c3"].measurement.task_stats["doppler"]
        # Paper: "the receive phase in the first task [is] relatively
        # higher than the other two phases".
        assert d.recv > 0.8 * (d.compute + d.send)

    def test_read_phase_hidden_with_sf64(self, results):
        d = results["sf64_c3"].measurement.task_stats["doppler"]
        assert d.recv < 0.1 * d.compute

    def test_sf64_scales_nearly_linearly(self, results):
        speedup = results["sf64_c3"].throughput / results["sf64_c1"].throughput
        assert speedup > 3.0  # 4x nodes

    def test_latency_only_mildly_affected_by_bottleneck(self, results):
        """§5.1: latency does not degrade like throughput does."""
        lat16 = results["sf16_c3"].latency
        lat64 = results["sf64_c3"].latency
        # Throughput halved (see above); latency grows far less than 2x.
        assert lat16 < 1.7 * lat64
        # ... and still improves over case 1 despite the bottleneck.
        assert lat16 < results["sf16_c1"].latency


class TestFinding2_SeparateIOTask:
    """§5.2: separate I/O task — same throughput, worse latency."""

    def test_throughput_approximately_same(self, results):
        r7, r8 = results["sf64_c1"], results["sep_sf64_c1"]
        assert r8.throughput == pytest.approx(r7.throughput, rel=0.05)

    def test_latency_worse_with_extra_task(self, results):
        assert results["sep_sf64_c1"].latency > 1.1 * results["sf64_c1"].latency


class TestFinding3_SynchronousIO:
    """§5.1/§3: PIOFS' missing async reads hurt SP scalability."""

    def test_sp_scales_sublinearly(self, results):
        sp_speedup = results["sp_c3"].throughput / results["sp_c1"].throughput
        paragon_speedup = (
            results["sf64_c3"].throughput / results["sf64_c1"].throughput
        )
        assert sp_speedup < 0.8 * paragon_speedup

    def test_sp_faster_cpu_shows_in_absolute_numbers(self, results):
        assert results["sp_c1"].throughput > results["sf64_c1"].throughput

    def test_sp_read_not_overlapped(self, results):
        d = results["sp_c3"].measurement.task_stats["doppler"]
        assert d.recv > 0.5 * d.compute  # sync read sits in the cycle


class TestFinding4_TaskCombination:
    """§6: combining PC+CFAR improves latency, not throughput."""

    def test_latency_improves(self, results):
        assert results["comb_sf64_c1"].latency < results["sf64_c1"].latency

    def test_throughput_unchanged(self, results):
        r7, r6 = results["sf64_c1"], results["comb_sf64_c1"]
        assert r6.throughput == pytest.approx(r7.throughput, rel=0.03)

    def test_improvement_decreases_with_nodes(self, results):
        imp1 = 1 - results["comb_sf64_c1"].latency / results["sf64_c1"].latency
        imp3 = 1 - results["comb_sf64_c3"].latency / results["sf64_c3"].latency
        assert imp1 > imp3 > 0


class TestEquationCrossChecks:
    """Measured behaviour vs the paper's analytic forms."""

    def test_throughput_equals_inverse_bottleneck(self, results):
        for key in ("sf64_c1", "sf16_c3", "sp_c1"):
            m = results[key].measurement
            assert m.throughput == pytest.approx(m.model_throughput, rel=0.25)

    def test_latency_close_to_path_sum(self, results):
        """In a balanced (non-bottlenecked) pipeline, measured journey
        time approaches the Eq. 2 sum of path service times."""
        m = results["sf64_c1"].measurement
        assert m.latency == pytest.approx(m.model_latency, rel=0.35)
