"""Point-to-point messaging tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MPIError
from repro.mpi.communicator import ANY_SOURCE, ANY_TAG, Communicator
from repro.mpi.request import Request


@pytest.fixture
def comm(ideal_machine):
    return Communicator.world(ideal_machine)


def run_ranks(comm, bodies):
    """Spawn one process per (rank, generator-fn) pair and run."""
    k = comm.kernel
    procs = [k.process(body(comm.view(rank))) for rank, body in bodies]
    k.run()
    return procs


class TestBasics:
    def test_world_size(self, comm):
        assert comm.size == 8

    def test_empty_communicator_rejected(self, ideal_machine):
        with pytest.raises(ConfigurationError):
            Communicator(ideal_machine, [])

    def test_rank_out_of_machine_rejected(self, ideal_machine):
        with pytest.raises(ConfigurationError):
            Communicator(ideal_machine, [0, 99])

    def test_view_bad_rank(self, comm):
        with pytest.raises(MPIError):
            comm.view(8)

    def test_send_to_bad_rank(self, comm):
        rc = comm.view(0)
        with pytest.raises(MPIError):
            rc.isend("x", 42)

    def test_negative_user_tag_rejected(self, comm):
        rc = comm.view(0)
        with pytest.raises(MPIError):
            rc.isend("x", 1, tag=-3)


class TestSendRecv:
    def test_blocking_roundtrip(self, comm):
        got = []

        def sender(rc):
            yield from rc.send({"v": 1}, dest=1, tag=7)

        def receiver(rc):
            msg = yield from rc.recv(source=0, tag=7)
            got.append(msg)

        run_ranks(comm, [(0, sender), (1, receiver)])
        assert got == [{"v": 1}]

    def test_numpy_payload(self, comm):
        got = []

        def sender(rc):
            yield from rc.send(np.arange(10), dest=1)

        def receiver(rc):
            arr = yield from rc.recv(source=0)
            got.append(arr)

        run_ranks(comm, [(0, sender), (1, receiver)])
        assert np.array_equal(got[0], np.arange(10))

    def test_transfer_takes_simulated_time(self, comm):
        stamps = []

        def sender(rc):
            yield from rc.send(np.zeros(1000, np.float64), dest=1)

        def receiver(rc):
            yield from rc.recv(source=0)
            stamps.append(rc.kernel.now)

        run_ranks(comm, [(0, sender), (1, receiver)])
        net = comm.machine.network
        assert stamps[0] >= net.pure_transfer_time(8000)

    def test_larger_messages_take_longer(self, ideal_machine):
        comm = Communicator.world(ideal_machine)
        times = {}

        def sender(rc, n, tag):
            yield from rc.send(np.zeros(n, np.float64), dest=1, tag=tag)

        def receiver(rc):
            yield from rc.recv(source=0, tag=1)
            times["small"] = rc.kernel.now
            yield from rc.recv(source=0, tag=2)
            times["big"] = rc.kernel.now

        k = comm.kernel
        k.process(sender(comm.view(0), 10, 1))
        k.process(sender(comm.view(0), 10**6, 2))
        k.process(receiver(comm.view(1)))
        k.run()
        assert times["big"] > times["small"]

    def test_tag_matching(self, comm):
        got = []

        def sender(rc):
            rc.isend("wrong", 1, tag=1)
            rc.isend("right", 1, tag=2)
            yield rc.kernel.timeout(0)

        def receiver(rc):
            v = yield from rc.recv(source=0, tag=2)
            got.append(v)
            v = yield from rc.recv(source=0, tag=1)
            got.append(v)

        run_ranks(comm, [(0, sender), (1, receiver)])
        assert got == ["right", "wrong"]

    def test_source_matching(self, comm):
        got = []

        def sender(rc, label):
            yield from rc.send(label, dest=2, tag=0)

        def receiver(rc):
            v = yield from rc.recv(source=1, tag=0)
            got.append(v)
            v = yield from rc.recv(source=0, tag=0)
            got.append(v)

        run_ranks(
            comm,
            [(0, lambda rc: sender(rc, "from0")), (1, lambda rc: sender(rc, "from1")),
             (2, receiver)],
        )
        assert got == ["from1", "from0"]

    def test_wildcards(self, comm):
        got = []

        def sender(rc):
            yield from rc.send("anything", dest=1, tag=99)

        def receiver(rc):
            v = yield from rc.recv(source=ANY_SOURCE, tag=ANY_TAG)
            got.append(v)

        run_ranks(comm, [(0, sender), (1, receiver)])
        assert got == ["anything"]

    def test_non_overtaking_same_source_tag(self, comm):
        got = []

        def sender(rc):
            for i in range(5):
                rc.isend(i, 1, tag=0)
            yield rc.kernel.timeout(0)

        def receiver(rc):
            for _ in range(5):
                v = yield from rc.recv(source=0, tag=0)
                got.append(v)

        run_ranks(comm, [(0, sender), (1, receiver)])
        assert got == [0, 1, 2, 3, 4]

    def test_recv_msg_envelope(self, comm):
        got = []

        def sender(rc):
            yield from rc.send("payload", dest=1, tag=5)

        def receiver(rc):
            msg = yield from rc.recv_msg(source=0)
            got.append((msg.src, msg.dst, msg.tag, msg.payload))

        run_ranks(comm, [(0, sender), (1, receiver)])
        assert got == [(0, 1, 5, "payload")]

    def test_self_send(self, comm):
        got = []

        def both(rc):
            rc.isend("me", rc.rank, tag=0)
            v = yield from rc.recv(source=rc.rank, tag=0)
            got.append(v)

        run_ranks(comm, [(0, both)])
        assert got == ["me"]


class TestRequests:
    def test_isend_irecv_overlap(self, comm):
        got = []

        def sender(rc):
            req = rc.isend("x", 1, tag=0)
            yield from req.wait()

        def receiver(rc):
            req = rc.irecv(source=0, tag=0)
            assert not req.complete
            v = yield from req.wait()
            got.append(v)

        run_ranks(comm, [(0, sender), (1, receiver)])
        assert got == ["x"]

    def test_test_returns_none_until_done(self, comm):
        probes = []

        def receiver(rc):
            req = rc.irecv(source=0, tag=0)
            probes.append(req.test())
            v = yield from req.wait()
            probes.append(req.test())
            return v

        def sender(rc):
            yield rc.kernel.timeout(1.0)
            rc.isend("late", 1, tag=0)

        run_ranks(comm, [(0, sender), (1, receiver)])
        assert probes[0] is None and probes[1] == "late"

    def test_wait_all(self, comm):
        got = []

        def sender(rc):
            for i in range(3):
                rc.isend(i * 10, 1, tag=i)
            yield rc.kernel.timeout(0)

        def receiver(rc):
            reqs = [rc.irecv(source=0, tag=i) for i in range(3)]
            vals = yield from Request.wait_all(rc.kernel, reqs)
            got.append(vals)

        run_ranks(comm, [(0, sender), (1, receiver)])
        assert got == [[0, 10, 20]]

    def test_wait_all_rejects_non_requests(self, comm):
        with pytest.raises(MPIError):
            list(Request.wait_all(comm.kernel, ["nope"]))
