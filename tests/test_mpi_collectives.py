"""Collective-operation tests across communicator sizes and networks."""

import numpy as np
import pytest

from repro.machine.presets import generic_cluster, ibm_sp, paragon
from repro.mpi.communicator import Communicator
from repro.sim.kernel import Kernel


def make_comm(size, preset=None):
    k = Kernel()
    m = (preset or generic_cluster()).build(k, n_compute=size)
    return Communicator.world(m)


def run_all(comm, body):
    k = comm.kernel
    results = {}

    def wrapper(rc):
        out = yield from body(rc)
        results[rc.rank] = out

    for r in range(comm.size):
        k.process(wrapper(comm.view(r)))
    k.run()
    return results


@pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 16])
class TestBySize:
    def test_barrier_completes(self, size):
        comm = make_comm(size)

        def body(rc):
            yield from rc.barrier()
            return rc.kernel.now

        res = run_all(comm, body)
        assert len(res) == size

    def test_bcast(self, size):
        comm = make_comm(size)
        root = size // 2

        def body(rc):
            data = "the-word" if rc.rank == root else None
            out = yield from rc.bcast(data, root=root)
            return out

        res = run_all(comm, body)
        assert all(v == "the-word" for v in res.values())

    def test_gather(self, size):
        comm = make_comm(size)

        def body(rc):
            out = yield from rc.gather(rc.rank**2, root=0)
            return out

        res = run_all(comm, body)
        assert res[0] == [r**2 for r in range(size)]
        assert all(res[r] is None for r in range(1, size))

    def test_scatter(self, size):
        comm = make_comm(size)

        def body(rc):
            items = [f"item{i}" for i in range(size)] if rc.rank == 0 else None
            mine = yield from rc.scatter(items, root=0)
            return mine

        res = run_all(comm, body)
        assert all(res[r] == f"item{r}" for r in range(size))

    def test_allreduce_sum(self, size):
        comm = make_comm(size)

        def body(rc):
            out = yield from rc.allreduce(rc.rank + 1, op=lambda a, b: a + b)
            return out

        res = run_all(comm, body)
        expect = size * (size + 1) // 2
        assert all(v == expect for v in res.values())


class TestSemantics:
    def test_barrier_actually_synchronises(self):
        comm = make_comm(4)
        after = {}

        def body(rc):
            yield rc.kernel.timeout(float(rc.rank))  # staggered arrivals
            yield from rc.barrier()
            after[rc.rank] = rc.kernel.now
            return None

        run_all(comm, body)
        # Nobody leaves the barrier before the slowest arrival (t=3).
        assert min(after.values()) >= 3.0

    def test_bcast_numpy(self):
        comm = make_comm(5)

        def body(rc):
            data = np.arange(8) if rc.rank == 0 else None
            out = yield from rc.bcast(data, root=0)
            return out.sum()

        res = run_all(comm, body)
        assert all(v == 28 for v in res.values())

    def test_scatter_wrong_length_raises(self):
        comm = make_comm(3)
        k = comm.kernel

        def root_body(rc):
            yield from rc.scatter(["only-one"], root=0)

        k.process(root_body(comm.view(0)))
        with pytest.raises(Exception):
            k.run()

    def test_successive_collectives_do_not_cross_talk(self):
        comm = make_comm(4)

        def body(rc):
            a = yield from rc.bcast("first" if rc.rank == 0 else None, root=0)
            b = yield from rc.bcast("second" if rc.rank == 0 else None, root=0)
            g = yield from rc.gather((a, b), root=0)
            return g

        res = run_all(comm, body)
        assert res[0] == [("first", "second")] * 4

    @pytest.mark.parametrize("preset", [paragon, ibm_sp])
    def test_collectives_on_contended_networks(self, preset):
        comm = make_comm(9, preset())

        def body(rc):
            yield from rc.barrier()
            out = yield from rc.allreduce(rc.rank, op=max)
            return out

        res = run_all(comm, body)
        assert all(v == 8 for v in res.values())

    def test_bcast_mixed_with_p2p(self):
        comm = make_comm(3)

        def body(rc):
            if rc.rank == 0:
                rc.isend("direct", 2, tag=4)
            out = yield from rc.bcast("b" if rc.rank == 0 else None, root=0)
            extra = None
            if rc.rank == 2:
                extra = yield from rc.recv(source=0, tag=4)
            return (out, extra)

        res = run_all(comm, body)
        assert res[2] == ("b", "direct")
        assert res[1] == ("b", None)
