"""Unit and property tests for striping arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.pfs.stripe import StripeLayout


class TestBasics:
    def test_invalid_unit(self):
        with pytest.raises(ConfigurationError):
            StripeLayout(0, 4)

    def test_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            StripeLayout(1024, 0)

    def test_unit_of(self):
        lay = StripeLayout(100, 4)
        assert lay.unit_of(0) == 0
        assert lay.unit_of(99) == 0
        assert lay.unit_of(100) == 1

    def test_directory_round_robin(self):
        lay = StripeLayout(10, 3)
        assert [lay.directory_of(i * 10) for i in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_n_units_ceil(self):
        lay = StripeLayout(100, 4)
        assert lay.n_units(0) == 0
        assert lay.n_units(1) == 1
        assert lay.n_units(100) == 1
        assert lay.n_units(101) == 2

    def test_negative_offset_rejected(self):
        with pytest.raises(ConfigurationError):
            StripeLayout(10, 2).unit_of(-1)


class TestMapRange:
    def test_empty_range(self):
        assert StripeLayout(10, 4).map_range(5, 0) == []

    def test_single_unit(self):
        runs = StripeLayout(100, 4).map_range(10, 50)
        assert len(runs) == 1
        assert runs[0].directory == 0 and runs[0].nbytes == 50 and runs[0].n_units == 1

    def test_spans_two_directories(self):
        runs = StripeLayout(100, 4).map_range(50, 100)
        assert [(r.directory, r.nbytes) for r in runs] == [(0, 50), (1, 50)]

    def test_wraps_around_directories(self):
        # 5 units over 2 dirs: units 0,2,4 -> dir0; 1,3 -> dir1.
        runs = StripeLayout(10, 2).map_range(0, 50)
        assert [(r.directory, r.nbytes, r.n_units) for r in runs] == [
            (0, 30, 3),
            (1, 20, 2),
        ]

    def test_coalesces_per_directory(self):
        runs = StripeLayout(10, 2).map_range(0, 100)
        assert len(runs) == 2  # one run per dir, not per unit

    def test_directories_touched(self):
        lay = StripeLayout(10, 8)
        assert lay.directories_touched(0, 10) == 1
        assert lay.directories_touched(0, 80) == 8
        assert lay.directories_touched(0, 200) == 8

    @given(
        st.integers(1, 4096),          # stripe unit
        st.integers(1, 64),            # stripe factor
        st.integers(0, 10**6),         # offset
        st.integers(0, 10**6),         # length
    )
    @settings(max_examples=120, deadline=None)
    def test_runs_conserve_bytes_and_units(self, unit, factor, offset, nbytes):
        lay = StripeLayout(unit, factor)
        runs = lay.map_range(offset, nbytes)
        assert sum(r.nbytes for r in runs) == nbytes
        total_units = sum(r.n_units for r in runs)
        if nbytes:
            first = offset // unit
            last = (offset + nbytes - 1) // unit
            assert total_units == last - first + 1
        dirs = [r.directory for r in runs]
        assert dirs == sorted(dirs)
        assert len(set(dirs)) == len(dirs)
        assert all(0 <= d < factor for d in dirs)

    @given(st.integers(1, 1000), st.integers(1, 32), st.integers(0, 10**5))
    @settings(max_examples=60, deadline=None)
    def test_first_run_offset_is_range_start_dir(self, unit, factor, offset):
        lay = StripeLayout(unit, factor)
        runs = lay.map_range(offset, unit * factor * 2)
        start_dir = lay.directory_of(offset)
        matching = [r for r in runs if r.directory == start_dir]
        assert matching and matching[0].file_offset == offset
