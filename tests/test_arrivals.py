"""Tests for the CPI arrival processes (repro.core.arrivals)."""

from __future__ import annotations

import pytest

from repro.core.arrivals import ARRIVAL_KINDS, ArrivalSpec
from repro.core.context import ExecutionConfig


class TestFixed:
    def test_default_gates_nothing(self):
        spec = ArrivalSpec()
        assert spec.kind == "fixed" and spec.period == 0.0
        assert spec.times(4) == (0.0, 0.0, 0.0, 0.0)

    def test_cadence_arithmetic(self):
        spec = ArrivalSpec(kind="fixed", period=0.5, offset=1.0)
        assert spec.times(4) == (1.0, 1.5, 2.0, 2.5)

    def test_empty_and_negative(self):
        assert ArrivalSpec().times(0) == ()
        with pytest.raises(ValueError, match="n_cpis"):
            ArrivalSpec().times(-1)


class TestBurst:
    def test_burst_train_structure(self):
        spec = ArrivalSpec(kind="burst", period=10.0, burst_size=3,
                           burst_gap=1.0, offset=2.0)
        assert spec.times(7) == (2.0, 3.0, 4.0, 12.0, 13.0, 14.0, 22.0)

    def test_burst_must_fit_in_period(self):
        with pytest.raises(ValueError, match="fit inside"):
            ArrivalSpec(kind="burst", period=1.0, burst_size=4, burst_gap=0.5)


class TestStochastic:
    @pytest.mark.parametrize("kind,kw", [
        ("poisson", {}),
        ("jittered", {"jitter": 0.3}),
    ])
    def test_same_seed_same_times(self, kind, kw):
        a = ArrivalSpec(kind=kind, period=1.0, seed=42, **kw)
        b = ArrivalSpec(kind=kind, period=1.0, seed=42, **kw)
        assert a.times(64) == b.times(64)
        # And the stream really is stochastic: another seed differs.
        c = ArrivalSpec(kind=kind, period=1.0, seed=43, **kw)
        assert a.times(64) != c.times(64)

    def test_times_are_pure(self):
        spec = ArrivalSpec(kind="poisson", period=0.5, seed=7)
        assert spec.times(16) == spec.times(16)
        # A shorter ask is a prefix of a longer one (same RNG stream).
        assert spec.times(8) == spec.times(16)[:8]

    def test_monotone_nondecreasing(self):
        for spec in (
            ArrivalSpec(kind="poisson", period=0.2, seed=3),
            ArrivalSpec(kind="jittered", period=1.0, jitter=1.0, seed=3),
        ):
            times = spec.times(200)
            assert all(t1 <= t2 for t1, t2 in zip(times, times[1:]))

    def test_poisson_mean_gap(self):
        times = ArrivalSpec(kind="poisson", period=2.0, seed=1).times(4000)
        mean = times[-1] / (len(times) - 1)
        assert mean == pytest.approx(2.0, rel=0.1)

    def test_jitter_bounds(self):
        spec = ArrivalSpec(kind="jittered", period=1.0, jitter=0.25, seed=9)
        times = spec.times(100)
        gaps = [t2 - t1 for t1, t2 in zip(times, times[1:])]
        assert all(0.75 - 1e-12 <= g <= 1.25 + 1e-12 for g in gaps)


class TestValidation:
    @pytest.mark.parametrize("kw,match", [
        ({"kind": "weird"}, "unknown arrival kind"),
        ({"period": -1.0}, "period"),
        ({"offset": -0.1}, "offset"),
        ({"kind": "poisson", "period": 0.0}, "poisson"),
        ({"kind": "jittered", "period": 1.0, "jitter": -1.0}, "jitter"),
        ({"kind": "jittered", "period": 1.0, "jitter": 2.0}, "jitter"),
        ({"kind": "burst", "burst_size": 0}, "burst_size"),
        ({"kind": "burst", "burst_gap": -1.0}, "burst_gap"),
    ])
    def test_rejects(self, kw, match):
        with pytest.raises(ValueError, match=match):
            ArrivalSpec(**kw)

    def test_kinds_registry(self):
        assert ARRIVAL_KINDS == ("fixed", "poisson", "jittered", "burst")


class TestSerialization:
    @pytest.mark.parametrize("spec", [
        ArrivalSpec(),
        ArrivalSpec(kind="fixed", period=0.5, offset=2.0),
        ArrivalSpec(kind="poisson", period=1.5, seed=11),
        ArrivalSpec(kind="jittered", period=1.0, jitter=0.5, seed=2),
        ArrivalSpec(kind="burst", period=8.0, burst_size=4, burst_gap=0.5),
    ])
    def test_round_trip(self, spec):
        assert ArrivalSpec.from_dict(spec.to_dict()) == spec

    def test_minimal_dict(self):
        # Default fields stay out of the wire form (and out of hashes).
        assert ArrivalSpec(kind="fixed", period=0.5).to_dict() == {
            "kind": "fixed", "period": 0.5,
        }

    def test_execution_config_carries_arrival(self):
        cfg = ExecutionConfig(
            n_cpis=4, arrival=ArrivalSpec(kind="poisson", period=1.0, seed=3)
        )
        back = ExecutionConfig.from_dict(cfg.to_dict())
        assert back == cfg and isinstance(back.arrival, ArrivalSpec)
        # No arrival process: the wire dict stays exactly as before.
        assert "arrival" not in ExecutionConfig(n_cpis=4).to_dict()

    def test_execution_config_rejects_raw_dict(self):
        with pytest.raises(Exception):
            ExecutionConfig(arrival={"kind": "fixed", "period": 1.0})
