"""Unit tests for repro.sim.resources."""

import pytest

from repro.errors import SimulationError
from repro.sim.resources import PriorityResource, Resource, Store


class TestResource:
    def test_capacity_must_be_positive(self, kernel):
        with pytest.raises(SimulationError):
            Resource(kernel, capacity=0)

    def test_grant_within_capacity_is_immediate(self, kernel):
        r = Resource(kernel, capacity=2)
        assert r.request().triggered
        assert r.request().triggered
        assert r.in_use == 2

    def test_over_capacity_queues(self, kernel):
        r = Resource(kernel, capacity=1)
        r.request()
        ev = r.request()
        assert not ev.triggered and r.queue_length == 1

    def test_release_grants_next_waiter(self, kernel):
        r = Resource(kernel, capacity=1)
        r.request()
        ev = r.request()
        r.release()
        assert ev.triggered

    def test_release_idle_raises(self, kernel):
        r = Resource(kernel, capacity=1)
        with pytest.raises(SimulationError):
            r.release()

    def test_fifo_service_order(self, kernel):
        r = Resource(kernel, capacity=1)
        done = []

        def worker(k, r, name):
            yield from r.using(1.0)
            done.append((name, k.now))

        for n in "abc":
            kernel.process(worker(kernel, r, n))
        kernel.run()
        assert done == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_using_releases_on_completion(self, kernel):
        r = Resource(kernel, capacity=1)

        def worker(k, r):
            yield from r.using(1.0)

        kernel.process(worker(kernel, r))
        kernel.run()
        assert r.in_use == 0

    def test_capacity_two_overlaps(self, kernel):
        r = Resource(kernel, capacity=2)
        done = []

        def worker(k, r, name):
            yield from r.using(1.0)
            done.append((name, k.now))

        for n in "abcd":
            kernel.process(worker(kernel, r, n))
        kernel.run()
        assert done == [("a", 1.0), ("b", 1.0), ("c", 2.0), ("d", 2.0)]


class TestPriorityResource:
    def test_priority_order(self, kernel):
        r = PriorityResource(kernel, capacity=1)
        done = []

        def worker(k, r, name, prio):
            yield r.request(priority=prio)
            yield k.timeout(1.0)
            r.release()
            done.append(name)

        # First grabs immediately; the rest queue with priorities.
        kernel.process(worker(kernel, r, "first", 0))
        kernel.process(worker(kernel, r, "low", 5))
        kernel.process(worker(kernel, r, "high", 1))
        kernel.run()
        assert done == ["first", "high", "low"]

    def test_fifo_within_priority(self, kernel):
        r = PriorityResource(kernel, capacity=1)
        done = []

        def worker(k, r, name):
            yield r.request(priority=1)
            yield k.timeout(1.0)
            r.release()
            done.append(name)

        for n in "xyz":
            kernel.process(worker(kernel, r, n))
        kernel.run()
        assert done == ["x", "y", "z"]

    def test_release_idle_raises(self, kernel):
        r = PriorityResource(kernel)
        with pytest.raises(SimulationError):
            r.release()


class TestStore:
    def test_put_never_blocks(self, kernel):
        s = Store(kernel)
        for i in range(100):
            assert s.put(i).triggered
        assert len(s) == 100

    def test_get_from_buffered(self, kernel):
        s = Store(kernel)
        s.put("a")
        ev = s.get()
        assert ev.triggered and ev.value == "a"

    def test_get_blocks_until_put(self, kernel):
        s = Store(kernel)
        got = []

        def getter(k, s):
            v = yield s.get()
            got.append((v, k.now))

        def putter(k, s):
            yield k.timeout(2.0)
            s.put("late")

        kernel.process(getter(kernel, s))
        kernel.process(putter(kernel, s))
        kernel.run()
        assert got == [("late", 2.0)]

    def test_fifo_item_order(self, kernel):
        s = Store(kernel)
        for i in range(3):
            s.put(i)
        assert [s.get().value for _ in range(3)] == [0, 1, 2]

    def test_filtered_get_skips_non_matching(self, kernel):
        s = Store(kernel)
        s.put(1)
        s.put(2)
        s.put(3)
        ev = s.get(lambda x: x % 2 == 0)
        assert ev.value == 2
        assert s.peek_all() == [1, 3]

    def test_filtered_get_blocks_until_match(self, kernel):
        s = Store(kernel)
        s.put("wrong")
        got = []

        def getter(k, s):
            v = yield s.get(lambda x: x == "right")
            got.append(v)

        def putter(k, s):
            yield k.timeout(1.0)
            s.put("right")

        kernel.process(getter(kernel, s))
        kernel.process(putter(kernel, s))
        kernel.run()
        assert got == ["right"] and s.peek_all() == ["wrong"]

    def test_put_wakes_first_matching_getter(self, kernel):
        s = Store(kernel)
        order = []

        def getter(k, s, name, flt):
            v = yield s.get(flt)
            order.append((name, v))

        kernel.process(getter(kernel, s, "evens", lambda x: x % 2 == 0))
        kernel.process(getter(kernel, s, "odds", lambda x: x % 2 == 1))

        def putter(k, s):
            yield k.timeout(1.0)
            s.put(3)
            s.put(4)

        kernel.process(putter(kernel, s))
        kernel.run()
        assert sorted(order) == [("evens", 4), ("odds", 3)]

    def test_getters_fifo_among_equal_filters(self, kernel):
        s = Store(kernel)
        order = []

        def getter(k, s, name):
            v = yield s.get()
            order.append(name)

        for n in "abc":
            kernel.process(getter(kernel, s, n))

        def putter(k, s):
            yield k.timeout(1.0)
            for _ in range(3):
                s.put(0)

        kernel.process(putter(kernel, s))
        kernel.run()
        assert order == ["a", "b", "c"]
