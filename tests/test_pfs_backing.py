"""Tests for the backing store and disk model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NoSuchFileError
from repro.mpi.datatypes import Phantom
from repro.pfs.backing import BackingStore
from repro.pfs.blockdev import DiskSpec


class TestDiskSpec:
    def test_invalid_bandwidth(self):
        with pytest.raises(ConfigurationError):
            DiskSpec(bandwidth=0, overhead=1e-3)

    def test_invalid_overhead(self):
        with pytest.raises(ConfigurationError):
            DiskSpec(bandwidth=1e6, overhead=-1)

    def test_invalid_extra_unit_frac(self):
        with pytest.raises(ConfigurationError):
            DiskSpec(1e6, 1e-3, extra_unit_overhead_frac=2.0)

    def test_service_time_single_unit(self):
        d = DiskSpec(bandwidth=1e6, overhead=0.01)
        assert d.service_time(1e6) == pytest.approx(1.01)

    def test_multi_unit_extra_seek(self):
        d = DiskSpec(1e6, 0.01, extra_unit_overhead_frac=0.1)
        t1 = d.service_time(1000, n_units=1)
        t5 = d.service_time(1000, n_units=5)
        assert t5 == pytest.approx(t1 + 4 * 0.001)

    def test_zero_bytes_still_pays_overhead(self):
        d = DiskSpec(1e6, 0.02)
        assert d.service_time(0) == pytest.approx(0.02)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskSpec(1e6, 0.01).service_time(-1)


class TestBackingStore:
    def test_create_and_exists(self):
        bs = BackingStore()
        assert not bs.exists("f")
        bs.create("f")
        assert bs.exists("f") and bs.size("f") == 0

    def test_write_read_roundtrip(self):
        bs = BackingStore()
        bs.create("f")
        bs.write("f", 0, b"hello world")
        assert bs.read("f", 0, 5) == b"hello"
        assert bs.read("f", 6, 5) == b"world"

    def test_write_at_offset_grows_file(self):
        bs = BackingStore()
        bs.create("f")
        bs.write("f", 10, b"xy")
        assert bs.size("f") == 12
        assert bs.read("f", 0, 10) == b"\0" * 10

    def test_overwrite_in_place(self):
        bs = BackingStore()
        bs.create("f")
        bs.write("f", 0, b"aaaa")
        bs.write("f", 1, b"bb")
        assert bs.read("f", 0, 4) == b"abba"

    def test_numpy_write(self):
        bs = BackingStore()
        bs.create("f")
        arr = np.arange(4, dtype=np.int32)
        bs.write("f", 0, arr)
        back = np.frombuffer(bs.read("f", 0, 16), dtype=np.int32)
        assert np.array_equal(back, arr)

    def test_short_read_past_eof(self):
        bs = BackingStore()
        bs.create("f")
        bs.write("f", 0, b"abc")
        assert bs.read("f", 2, 10) == b"c"

    def test_read_missing_file_raises(self):
        with pytest.raises(NoSuchFileError):
            BackingStore().read("ghost", 0, 1)

    def test_write_missing_file_raises(self):
        with pytest.raises(NoSuchFileError):
            BackingStore().write("ghost", 0, b"x")

    def test_remove(self):
        bs = BackingStore()
        bs.create("f")
        bs.remove("f")
        assert not bs.exists("f")
        with pytest.raises(NoSuchFileError):
            bs.remove("f")

    def test_phantom_file_reads_phantom(self):
        bs = BackingStore()
        bs.create("p", phantom=True, size=1000)
        out = bs.read("p", 100, 200)
        assert isinstance(out, Phantom) and out.nbytes == 200

    def test_phantom_short_read(self):
        bs = BackingStore()
        bs.create("p", phantom=True, size=100)
        out = bs.read("p", 90, 50)
        assert out.nbytes == 10

    def test_phantom_write_extends_size(self):
        bs = BackingStore()
        bs.create("p", phantom=True, size=10)
        bs.write("p", 50, Phantom(25))
        assert bs.size("p") == 75

    def test_real_bytes_into_phantom_track_size_only(self):
        bs = BackingStore()
        bs.create("p", phantom=True, size=0)
        bs.write("p", 0, b"abcdef")
        assert bs.size("p") == 6
        assert isinstance(bs.read("p", 0, 6), Phantom)

    def test_phantom_write_into_real_file_zero_extends(self):
        bs = BackingStore()
        bs.create("f")
        bs.write("f", 0, Phantom(8))
        assert bs.size("f") == 8
        assert bs.read("f", 0, 8) == b"\0" * 8

    def test_recreate_switches_mode(self):
        bs = BackingStore()
        bs.create("f", phantom=True, size=10)
        bs.create("f")  # now real
        assert not bs.is_phantom("f") and bs.size("f") == 0
