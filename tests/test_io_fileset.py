"""Tests for the round-robin cube file set and the radar writer."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.io.fileset import CubeFileSet, CubeSource
from repro.io.writer import RadarWriter
from repro.machine.presets import generic_cluster
from repro.pfs import PFS, DiskSpec
from repro.sim.kernel import Kernel
from repro.stap.datacube import DataCube
from repro.stap.scenario import Scenario, make_cube


def make_fs(params, n_io=4):
    k = Kernel()
    m = generic_cluster().build(k, n_compute=4, n_io=n_io)
    fs = PFS(m, 64 * 1024, n_io, DiskSpec(100e6, 1e-4))
    return k, fs


class TestCubeSource:
    def test_matches_make_cube(self, tiny_params):
        sc = Scenario.standard(tiny_params)
        src = CubeSource(tiny_params, sc)
        direct = make_cube(tiny_params, sc, 5)
        assert np.array_equal(src.cube(5).data, direct.data)

    def test_cache_hit_same_object(self, tiny_params):
        src = CubeSource(tiny_params, Scenario.standard(tiny_params))
        assert src.cube(2) is src.cube(2)

    def test_cache_eviction(self, tiny_params):
        src = CubeSource(tiny_params, Scenario.standard(tiny_params), cache_size=2)
        a = src.cube(0)
        src.cube(1)
        src.cube(2)  # evicts 0
        assert src.cube(0) is not a

    def test_invalid_cache_size(self, tiny_params):
        with pytest.raises(ConfigurationError):
            CubeSource(tiny_params, Scenario.standard(tiny_params), cache_size=0)


class TestCubeFileSet:
    def test_round_robin_paths(self, tiny_params):
        k, fs = make_fs(tiny_params)
        fset = CubeFileSet(fs, tiny_params)
        assert fset.path(0) == "cpi0.dat"
        assert fset.path(5) == "cpi1.dat"
        with pytest.raises(ConfigurationError):
            fset.path(-1)

    def test_phantom_initialize(self, tiny_params):
        k, fs = make_fs(tiny_params)
        fset = CubeFileSet(fs, tiny_params)
        fset.initialize()
        assert fset.phantom
        for f in range(4):
            assert fs.file_size(f"cpi{f}.dat") == tiny_params.cube_nbytes

    def test_compute_initialize_holds_first_cubes(self, tiny_params):
        k, fs = make_fs(tiny_params)
        sc = Scenario.standard(tiny_params)
        fset = CubeFileSet(fs, tiny_params, source=CubeSource(tiny_params, sc))
        fset.initialize()
        raw = fs.backing.read("cpi2.dat", 0, tiny_params.cube_nbytes)
        expect = make_cube(tiny_params, sc, 2).to_file_bytes()
        assert raw == expect

    def test_ensure_cpi_rotates_content(self, tiny_params):
        k, fs = make_fs(tiny_params)
        sc = Scenario.standard(tiny_params)
        fset = CubeFileSet(fs, tiny_params, source=CubeSource(tiny_params, sc))
        fset.initialize()
        fset.ensure_cpi(4)  # overwrites file 0
        raw = fs.backing.read("cpi0.dat", 0, tiny_params.cube_nbytes)
        assert raw == make_cube(tiny_params, sc, 4).to_file_bytes()

    def test_ensure_cpi_noop_when_current(self, tiny_params):
        k, fs = make_fs(tiny_params)
        sc = Scenario.standard(tiny_params)
        fset = CubeFileSet(fs, tiny_params, source=CubeSource(tiny_params, sc))
        fset.initialize()
        before = fs.backing.read("cpi1.dat", 0, 64)
        fset.ensure_cpi(1)
        assert fs.backing.read("cpi1.dat", 0, 64) == before

    def test_phantom_ensure_is_noop(self, tiny_params):
        k, fs = make_fs(tiny_params)
        fset = CubeFileSet(fs, tiny_params)
        fset.initialize()
        fset.ensure_cpi(12)  # no error, no content change

    def test_slab_extent_passthrough(self, tiny_params):
        k, fs = make_fs(tiny_params)
        fset = CubeFileSet(fs, tiny_params)
        assert fset.slab_extent(2, 5) == DataCube.file_slab_extent(tiny_params, 2, 5)

    def test_needs_at_least_one_file(self, tiny_params):
        k, fs = make_fs(tiny_params)
        with pytest.raises(ConfigurationError):
            CubeFileSet(fs, tiny_params, n_files=0)


class TestRadarWriter:
    def test_writes_advance_file_contents(self, tiny_params):
        k, fs = make_fs(tiny_params)
        sc = Scenario.standard(tiny_params)
        fset = CubeFileSet(fs, tiny_params, source=CubeSource(tiny_params, sc))
        fset.initialize()
        w = RadarWriter(fset, node_id=0, period=0.1, n_cpis=3, start_cpi=4)
        k.process(w.run(k))
        k.run()
        assert w.writes_done == 3
        raw = fs.backing.read("cpi0.dat", 0, tiny_params.cube_nbytes)
        assert raw == make_cube(tiny_params, sc, 4).to_file_bytes()

    def test_phantom_writer(self, tiny_params):
        k, fs = make_fs(tiny_params)
        fset = CubeFileSet(fs, tiny_params)
        fset.initialize()
        w = RadarWriter(fset, node_id=0, period=0.05, n_cpis=2)
        k.process(w.run(k))
        k.run()
        assert w.writes_done == 2

    def test_writer_takes_simulated_time(self, tiny_params):
        k, fs = make_fs(tiny_params)
        fset = CubeFileSet(fs, tiny_params)
        fset.initialize()
        w = RadarWriter(fset, node_id=0, period=0.5, n_cpis=2, initial_delay=0.25)
        k.process(w.run(k))
        k.run()
        assert k.now > 1.0  # delay + 2 writes + periods

    def test_invalid_period(self, tiny_params):
        k, fs = make_fs(tiny_params)
        fset = CubeFileSet(fs, tiny_params)
        with pytest.raises(ConfigurationError):
            RadarWriter(fset, 0, period=0.0, n_cpis=1)
