"""Unit and property tests for block partitioning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.core.partition import BlockPartition, label_block_rows


class TestBlockPartition:
    def test_invalid(self):
        with pytest.raises(PartitionError):
            BlockPartition(-1, 2)
        with pytest.raises(PartitionError):
            BlockPartition(10, 0)

    def test_even_split(self):
        bp = BlockPartition(12, 4)
        assert bp.all_bounds() == [(0, 3), (3, 6), (6, 9), (9, 12)]

    def test_remainder_goes_to_first_blocks(self):
        bp = BlockPartition(10, 4)
        assert [bp.size(i) for i in range(4)] == [3, 3, 2, 2]

    def test_more_parts_than_units(self):
        bp = BlockPartition(2, 5)
        assert [bp.size(i) for i in range(5)] == [1, 1, 0, 0, 0]

    def test_bounds_out_of_range(self):
        with pytest.raises(PartitionError):
            BlockPartition(10, 2).bounds(2)

    def test_owner(self):
        bp = BlockPartition(10, 4)
        for i in range(4):
            lo, hi = bp.bounds(i)
            for u in range(lo, hi):
                assert bp.owner(u) == i

    def test_owner_out_of_range(self):
        with pytest.raises(PartitionError):
            BlockPartition(10, 2).owner(10)

    @given(st.integers(0, 5000), st.integers(1, 64))
    @settings(max_examples=100, deadline=None)
    def test_blocks_tile_and_balance(self, total, parts):
        bp = BlockPartition(total, parts)
        bounds = bp.all_bounds()
        pos = 0
        for lo, hi in bounds:
            assert lo == pos and hi >= lo
            pos = hi
        assert pos == total
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1

    @given(st.integers(1, 2000), st.integers(1, 32))
    @settings(max_examples=60, deadline=None)
    def test_owner_consistent_with_bounds(self, total, parts):
        bp = BlockPartition(total, parts)
        for u in range(0, total, max(1, total // 17)):
            i = bp.owner(u)
            lo, hi = bp.bounds(i)
            assert lo <= u < hi

    def test_overlap(self):
        a, b = BlockPartition(100, 4), BlockPartition(100, 3)
        assert a.overlap(0, b, 0) == (0, 25)
        lo, hi = a.overlap(1, b, 0)
        assert (lo, hi) == (25, 34)

    def test_overlap_empty(self):
        a, b = BlockPartition(100, 4), BlockPartition(100, 4)
        lo, hi = a.overlap(0, b, 3)
        assert lo == hi

    def test_overlap_space_mismatch(self):
        with pytest.raises(PartitionError):
            BlockPartition(10, 2).overlap(0, BlockPartition(11, 2), 0)

    @given(st.integers(1, 500), st.integers(1, 12), st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_overlaps_conserve_units(self, total, pa, pb):
        a, b = BlockPartition(total, pa), BlockPartition(total, pb)
        covered = 0
        for i in range(pa):
            for j in range(pb):
                lo, hi = a.overlap(i, b, j)
                covered += hi - lo
        assert covered == total

    @given(st.integers(1, 500), st.integers(1, 12), st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_peers_overlapping_is_exact(self, total, pa, pb):
        a, b = BlockPartition(total, pa), BlockPartition(total, pb)
        for i in range(pa):
            peers = set(a.peers_overlapping(i, b))
            brute = {
                j for j in range(pb) if a.overlap(i, b, j)[1] > a.overlap(i, b, j)[0]
            }
            assert peers == brute


class TestLabelBlockRows:
    def test_basic(self):
        labels = [1, 4, 6, 9, 12]
        assert label_block_rows(labels, 4, 10) == (1, 4)

    def test_empty_interval(self):
        assert label_block_rows([1, 2, 3], 5, 5) == (3, 3)

    def test_no_matches(self):
        assert label_block_rows([10, 20], 12, 18) == (1, 1)

    def test_all_match(self):
        assert label_block_rows([3, 4, 5], 0, 100) == (0, 3)

    def test_unsorted_rejected(self):
        with pytest.raises(PartitionError):
            label_block_rows([3, 1], 0, 5)

    def test_bad_interval(self):
        with pytest.raises(PartitionError):
            label_block_rows([1], 5, 2)

    @given(
        st.lists(st.integers(0, 200), min_size=0, max_size=50),
        st.integers(0, 200),
        st.integers(0, 200),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_filter_semantics(self, labels, a, b):
        labels = sorted(set(labels))
        lo, hi = min(a, b), max(a, b)
        rlo, rhi = label_block_rows(labels, lo, hi)
        selected = labels[rlo:rhi]
        assert selected == [x for x in labels if lo <= x < hi]
