"""Tests for steady-state measurement from traces."""

import pytest

from repro.errors import PipelineError
from repro.core.metrics import TaskPhaseStats, measure
from repro.core.pipeline import NodeAssignment, build_embedded_pipeline
from repro.trace.collector import TraceCollector
from repro.trace.record import Phase


class TestTaskPhaseStats:
    def test_total(self):
        s = TaskPhaseStats("t", recv=1.0, compute=2.0, send=0.5)
        assert s.total == 3.5


class TestMeasure:
    @pytest.fixture
    def spec(self, small_params):
        return build_embedded_pipeline(
            NodeAssignment.balanced(small_params, 20)
        )

    def _synthetic_trace(self, spec, n_cpis=4, beat=1.0):
        """Every task takes `beat` seconds per CPI, perfectly pipelined."""
        tc = TraceCollector()
        for k in range(n_cpis):
            for i, t in enumerate(spec.tasks):
                start = k * beat + i * beat
                tc.add(t.name, 0, k, Phase.RECV, start, start + 0.2 * beat)
                tc.add(t.name, 0, k, Phase.COMPUTE, start + 0.2 * beat, start + 0.9 * beat)
                tc.add(t.name, 0, k, Phase.SEND, start + 0.9 * beat, start + beat)
        return tc

    def test_throughput_matches_beat(self, spec):
        tc = self._synthetic_trace(spec, n_cpis=5, beat=2.0)
        m = measure(tc, spec, n_cpis=5, warmup=1, sink_task="cfar", first_task="doppler")
        assert m.throughput == pytest.approx(0.5)

    def test_task_times_match_beat(self, spec):
        tc = self._synthetic_trace(spec, beat=1.5)
        m = measure(tc, spec, 4, 1, "cfar", "doppler")
        for s in m.task_stats.values():
            assert s.total == pytest.approx(1.5)

    def test_latency_is_journey_time(self, spec):
        tc = self._synthetic_trace(spec, beat=1.0)
        m = measure(tc, spec, 4, 1, "cfar", "doppler")
        # 7 pipeline stages of 1 s each.
        assert m.latency == pytest.approx(7.0)

    def test_model_forms(self, spec):
        tc = self._synthetic_trace(spec, beat=1.0)
        m = measure(tc, spec, 4, 1, "cfar", "doppler")
        assert m.model_throughput == pytest.approx(1.0)
        # Latency path: doppler + max(bf) + pc + cfar = 4 tasks.
        assert m.model_latency == pytest.approx(4.0)

    def test_bottleneck_task(self, spec):
        tc = self._synthetic_trace(spec)
        tc.add("pulse_compr", 0, 1, Phase.COMPUTE, 100.0, 105.0)
        m = measure(tc, spec, 4, 1, "cfar", "doppler")
        assert m.bottleneck_task == "pulse_compr"

    def test_single_steady_cpi_falls_back(self, spec):
        tc = self._synthetic_trace(spec, n_cpis=2)
        m = measure(tc, spec, 2, 1, "cfar", "doppler")
        assert m.throughput == pytest.approx(m.model_throughput)

    def test_no_steady_cpis_raises(self, spec):
        tc = self._synthetic_trace(spec, n_cpis=2)
        with pytest.raises(PipelineError):
            measure(tc, spec, 2, 2, "cfar", "doppler")

    def test_missing_task_records_raises(self, spec):
        tc = TraceCollector()
        tc.add("doppler", 0, 0, Phase.COMPUTE, 0, 1)
        with pytest.raises(PipelineError):
            measure(tc, spec, 1, 0, "cfar", "doppler")

    def test_times_dict(self, spec):
        tc = self._synthetic_trace(spec)
        m = measure(tc, spec, 4, 1, "cfar", "doppler")
        assert set(m.times()) == set(spec.task_names())
