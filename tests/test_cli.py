"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.pipeline == "embedded" and args.case == 1
        assert args.fs == "pfs" and args.stripe_factor == 64
        assert not args.threaded

    def test_run_all_options(self):
        args = build_parser().parse_args(
            ["run", "--pipeline", "combined", "--case", "3", "--machine", "sp",
             "--fs", "piofs", "--stripe-factor", "80", "--cpis", "4",
             "--threaded"]
        )
        assert args.pipeline == "combined" and args.machine == "sp"
        assert args.threaded

    def test_invalid_case_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--case", "9"])

    def test_invalid_table_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "5"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "16 MiB" in out and "case 3" in out and "doppler" in out

    def test_run_prints_metrics(self, capsys):
        assert main(["run", "--case", "1", "--cpis", "3", "--warmup", "1"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "latency" in out and "bottleneck" in out

    def test_run_threaded(self, capsys):
        assert main(
            ["run", "--case", "1", "--cpis", "3", "--warmup", "1", "--threaded"]
        ) == 0
        assert "SMP-threaded" in capsys.readouterr().out

    def test_run_sp_piofs(self, capsys):
        code = main(
            ["run", "--machine", "sp", "--fs", "piofs", "--stripe-factor", "80",
             "--cpis", "3", "--warmup", "1"]
        )
        assert code == 0
        assert "IBM SP" in capsys.readouterr().out

    def test_detect(self, capsys):
        assert main(["detect", "--cpis", "2"]) == 0
        out = capsys.readouterr().out
        assert "ground truth" in out and "detections" in out

    def test_sweep_stripe(self, capsys):
        assert main(
            ["sweep-stripe", "--factors", "8,64", "--case", "1", "--cpis", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "sf=8" in out and "sf=64" in out

    def test_sweep_stripe_bad_factors(self, capsys):
        assert main(["sweep-stripe", "--factors", "a,b"]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_stripe_nonpositive(self, capsys):
        assert main(["sweep-stripe", "--factors", "0,4"]) == 2


class TestSpectrumCommand:
    def test_spectrum_renders_heatmap(self, capsys):
        assert main(["spectrum", "--estimator", "fourier"]) == 0
        out = capsys.readouterr().out
        assert "angle-Doppler" in out and "Doppler ->" in out
        assert "|" in out

    def test_spectrum_mvdr_default(self, capsys):
        assert main(["spectrum"]) == 0
        assert "mvdr" in capsys.readouterr().out

    def test_spectrum_bad_estimator(self):
        with pytest.raises(SystemExit):
            main(["spectrum", "--estimator", "music"])
