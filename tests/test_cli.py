"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def _isolated_cwd(tmp_path, monkeypatch):
    """Run every CLI test in a temp dir: the default result cache
    (``.cache/experiments``) is cwd-relative and must not leak into the
    repository when tests exercise cache-enabled commands."""
    monkeypatch.chdir(tmp_path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.pipeline == "embedded" and args.case == 1
        assert args.fs == "pfs" and args.stripe_factor == 64
        assert not args.threaded

    def test_run_all_options(self):
        args = build_parser().parse_args(
            ["run", "--pipeline", "combined", "--case", "3", "--machine", "sp",
             "--fs", "piofs", "--stripe-factor", "80", "--cpis", "4",
             "--threaded"]
        )
        assert args.pipeline == "combined" and args.machine == "sp"
        assert args.threaded

    def test_engine_defaults(self):
        for argv in (["run"], ["table", "1"], ["sweep-stripe"],
                     ["reproduce"]):
            args = build_parser().parse_args(argv)
            assert args.jobs == 1
            assert args.cache_dir.endswith("experiments")
            assert not args.no_cache

    def test_engine_options(self):
        args = build_parser().parse_args(
            ["reproduce", "--jobs", "4", "--cache-dir", "/tmp/x", "--no-cache"]
        )
        assert args.jobs == 4 and args.cache_dir == "/tmp/x" and args.no_cache

    def test_run_seed_option(self):
        assert build_parser().parse_args(["run", "--seed", "5"]).seed == 5

    def test_results_actions(self):
        args = build_parser().parse_args(["results", "list"])
        assert args.action == "list" and args.hash is None
        args = build_parser().parse_args(["results", "show", "abc123"])
        assert args.action == "show" and args.hash == "abc123"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["results", "frobnicate"])

    def test_invalid_case_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--case", "9"])

    def test_invalid_table_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "5"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_results_sort_option(self):
        assert build_parser().parse_args(["results", "list"]).sort is None
        args = build_parser().parse_args(["results", "list", "--sort", "size"])
        assert args.sort == "size"
        args = build_parser().parse_args(["results", "list", "--sort", "age"])
        assert args.sort == "age"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["results", "list", "--sort", "name"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 7077 and args.workers == 0
        assert not args.no_cache

    def test_submit_defaults_and_lists(self):
        args = build_parser().parse_args(
            ["submit", "--case", "1,2", "--stripe-factor", "16,64",
             "--follow"]
        )
        assert args.case == "1,2" and args.stripe_factor == "16,64"
        assert args.follow and args.port == 7077

    def test_jobs_actions(self):
        args = build_parser().parse_args(["jobs", "list"])
        assert args.action == "list" and args.id is None
        args = build_parser().parse_args(["jobs", "cancel", "j3"])
        assert args.action == "cancel" and args.id == "j3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["jobs", "frobnicate"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "16 MiB" in out and "case 3" in out and "doppler" in out

    def test_run_prints_metrics(self, capsys):
        assert main(["run", "--case", "1", "--cpis", "3", "--warmup", "1"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "latency" in out and "bottleneck" in out

    def test_run_threaded(self, capsys):
        assert main(
            ["run", "--case", "1", "--cpis", "3", "--warmup", "1", "--threaded"]
        ) == 0
        assert "SMP-threaded" in capsys.readouterr().out

    def test_run_sp_piofs(self, capsys):
        code = main(
            ["run", "--machine", "sp", "--fs", "piofs", "--stripe-factor", "80",
             "--cpis", "3", "--warmup", "1"]
        )
        assert code == 0
        assert "IBM SP" in capsys.readouterr().out

    def test_detect(self, capsys):
        assert main(["detect", "--cpis", "2"]) == 0
        out = capsys.readouterr().out
        assert "ground truth" in out and "detections" in out

    def test_sweep_stripe(self, capsys):
        assert main(
            ["sweep-stripe", "--factors", "8,64", "--case", "1", "--cpis", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "sf=8" in out and "sf=64" in out

    def test_sweep_stripe_bad_factors(self, capsys):
        assert main(["sweep-stripe", "--factors", "a,b"]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_stripe_nonpositive(self, capsys):
        assert main(["sweep-stripe", "--factors", "0,4"]) == 2


class TestResultCache:
    RUN = ["run", "--case", "1", "--cpis", "3", "--warmup", "1"]

    def test_second_run_served_from_cache(self, capsys):
        assert main(self.RUN) == 0
        first = capsys.readouterr().out
        assert "served from cache" not in first

        assert main(self.RUN) == 0
        second = capsys.readouterr().out
        assert "served from cache" in second

    def test_no_cache_skips_store(self, capsys, tmp_path):
        cache = tmp_path / "c"
        argv = self.RUN + ["--cache-dir", str(cache), "--no-cache"]
        assert main(argv) == 0
        capsys.readouterr()
        assert not cache.exists()
        assert main(argv) == 0
        assert "served from cache" not in capsys.readouterr().out

    def test_results_list_show_clear(self, capsys):
        assert main(self.RUN) == 0
        capsys.readouterr()

        assert main(["results", "list"]) == 0
        out = capsys.readouterr().out
        assert "1 cached cell(s)" in out and "embedded" in out
        # last table row sits just above the summary footer
        spec_hash = out.splitlines()[-2].split("|")[0].strip()
        assert "entries" in out.splitlines()[-1]

        assert main(["results", "show", spec_hash]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "bottleneck" in out
        assert spec_hash in out

        assert main(["results", "clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["results", "list"]) == 0
        assert "no cached results" in capsys.readouterr().out

    def test_invalid_jobs_is_a_clean_error(self, capsys):
        assert main(self.RUN + ["--jobs", "0"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "jobs" in err

    def test_results_show_needs_unique_hash(self, capsys):
        assert main(["results", "show"]) == 2
        assert "needs a spec hash" in capsys.readouterr().err
        assert main(["results", "show", "deadbeef"]) == 2
        assert "no cached result" in capsys.readouterr().err

    def test_results_list_sort_and_footer(self, capsys):
        # Two differently-sized entries, written oldest-first.
        import os
        import time

        from repro.bench.store import ResultStore

        assert main(self.RUN) == 0
        assert main(["run", "--case", "1", "--cpis", "4", "--warmup", "1",
                     "--stripe-factor", "16"]) == 0
        capsys.readouterr()
        store = ResultStore()
        (a, b) = store.hashes()
        # force a deterministic size/mtime ordering regardless of runs
        big, small = store.path_for(a), store.path_for(b)
        big.write_text(big.read_text() + " " * 4096)
        old = time.time() - 1000
        os.utime(big, (old, old))

        assert main(["results", "list", "--sort", "size"]) == 0
        out = capsys.readouterr().out
        rows = [ln for ln in out.splitlines() if ln.startswith((a[:12], b[:12]))]
        assert rows[0].startswith(a[:12])       # biggest first
        footer = out.splitlines()[-1]
        assert "2 entries" in footer
        assert "bytes total" in footer and "schema v" in footer

        assert main(["results", "list", "--sort", "age"]) == 0
        out = capsys.readouterr().out
        rows = [ln for ln in out.splitlines() if ln.startswith((a[:12], b[:12]))]
        assert rows[0].startswith(b[:12])       # newest first


class TestServiceCommands:
    def test_jobs_list_unreachable_server_is_clean_error(self, capsys):
        assert main(["jobs", "list", "--port", "1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_submit_bad_case_list_is_clean_error(self, capsys):
        assert main(["submit", "--case", "x,y"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_serve_submit_jobs_round_trip(self, capsys):
        # In-process server on a free port; tiny 2-cell batch.
        from repro.bench.store import ResultStore
        from repro.service.scheduler import ExperimentScheduler
        from repro.service.server import ExperimentServer

        store = ResultStore(".cache/experiments")
        with ExperimentScheduler(workers=0, store=store) as scheduler:
            with ExperimentServer(scheduler, port=0) as server:
                rc = main([
                    "submit", "--port", str(server.port),
                    "--case", "1", "--stripe-factor", "8,16",
                    "--cpis", "2", "--warmup", "0",
                    "--client", "cli-test", "--follow",
                ])
                out = capsys.readouterr().out
                assert rc == 0
                assert "accepted: 2 cell(s)" in out
                assert out.count("executed") >= 2
                assert "job done: 2 executed" in out

                assert main(["jobs", "list", "--port",
                             str(server.port)]) == 0
                out = capsys.readouterr().out
                assert "cli-test" in out and "done" in out


class TestFaultFlags:
    RUN = ["run", "--case", "1", "--cpis", "3", "--warmup", "1", "--no-cache",
           "--stripe-factor", "8"]

    def test_crash_run_reports_fault_lines(self, capsys):
        argv = self.RUN + ["--replication", "2", "--crash-server", "0",
                           "--crash-at", "0.1", "--crash-down", "0.5",
                           "--read-deadline", "5.0"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "faults" in out and "outage" in out
        assert "dropped" in out and "past deadline" in out

    def test_flaky_run_reports_fault_lines(self, capsys):
        argv = self.RUN + ["--flaky-server", "0", "--flaky-rate", "0.2"]
        assert main(argv) == 0
        assert "faults" in capsys.readouterr().out

    def test_fault_free_run_has_no_fault_lines(self, capsys):
        assert main(self.RUN) == 0
        out = capsys.readouterr().out
        assert "faults" not in out and "dropped" not in out

    def test_zero_read_deadline_is_a_clean_error(self, capsys):
        assert main(self.RUN + ["--read-deadline", "0"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "read-deadline" in err

    def test_crash_server_out_of_range(self, capsys):
        assert main(self.RUN + ["--crash-server", "99"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "server_crash" in err

    def test_bad_replication_rejected(self, capsys):
        assert main(self.RUN + ["--replication", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_negative_flaky_rate_rejected(self, capsys):
        assert main(self.RUN + ["--flaky-server", "0", "--flaky-rate", "-1"]) == 2
        assert "error:" in capsys.readouterr().err


class TestSpectrumCommand:
    def test_spectrum_renders_heatmap(self, capsys):
        assert main(["spectrum", "--estimator", "fourier"]) == 0
        out = capsys.readouterr().out
        assert "angle-Doppler" in out and "Doppler ->" in out
        assert "|" in out

    def test_spectrum_mvdr_default(self, capsys):
        assert main(["spectrum"]) == 0
        assert "mvdr" in capsys.readouterr().out

    def test_spectrum_bad_estimator(self):
        with pytest.raises(SystemExit):
            main(["spectrum", "--estimator", "music"])


class TestStrategiesCommand:
    def test_list_shows_registry(self, capsys):
        assert main(["strategies", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("embedded-io", "separate-io", "collective-two-phase",
                     "data-sieving", "embedded-prefetch2"):
            assert name in out
        assert "needs async" in out

    def test_smoke_runs_every_strategy(self, capsys):
        assert main(["strategies", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "all strategies passed" in out
        assert out.count(" ok ") >= 5

    def test_smoke_skips_async_strategies_on_piofs(self, capsys):
        assert main(["strategies", "smoke", "--fs", "piofs"]) == 0
        out = capsys.readouterr().out
        assert "SKIP" in out and "all strategies passed" in out

    def test_bad_action_rejected(self):
        with pytest.raises(SystemExit):
            main(["strategies", "frobnicate"])


class TestRunStrategyOption:
    RUN = ["run", "--case", "1", "--cpis", "3", "--warmup", "1",
           "--stripe-factor", "8"]

    def test_run_with_strategy(self, capsys):
        assert main(self.RUN + ["--strategy", "data-sieving"]) == 0
        out = capsys.readouterr().out
        assert "data-sieving" in out and "throughput" in out

    def test_strategy_overrides_pipeline(self, capsys):
        argv = self.RUN + ["--pipeline", "separate",
                           "--strategy", "collective-two-phase"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "collective-two-phase" in out and "read" not in out.split("\n")[1]

    def test_strategy_run_cached_on_rerun(self, capsys):
        argv = self.RUN + ["--strategy", "collective-two-phase"]
        assert main(argv) == 0
        assert "served from cache" not in capsys.readouterr().out
        assert main(argv) == 0
        assert "served from cache" in capsys.readouterr().out

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            main(self.RUN + ["--strategy", "bogus"])

    def test_async_strategy_on_piofs_fails_cleanly(self, capsys):
        argv = self.RUN + ["--strategy", "embedded-prefetch2",
                           "--fs", "piofs"]
        assert main(argv) == 2
        assert "asynchronous" in capsys.readouterr().err


class TestScenarioCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["scenario", "run"])
        assert args.action == "run"
        assert args.tenants == [] and args.arrival == "fixed"
        assert args.stripe_factor == 8 and args.spec is None

    def test_run_from_spec_file(self, capsys, tmp_path, small_params):
        import json

        from repro.core.context import ExecutionConfig
        from repro.core.pipeline import NodeAssignment
        from repro.scenario import ScenarioSpec, TenantSpec
        from repro.core.executor import FSConfig

        cfg = ExecutionConfig(n_cpis=2, warmup=0)
        spec = ScenarioSpec(
            tenants=(
                TenantSpec(NodeAssignment.balanced(small_params, 14), cfg=cfg),
                TenantSpec(NodeAssignment.balanced(small_params, 14),
                           pipeline="separate-io", cfg=cfg),
            ),
            fs=FSConfig(kind="pfs", stripe_factor=4),
            params=small_params,
        )
        spec_path = tmp_path / "scn.json"
        spec_path.write_text(json.dumps(spec.to_dict()))
        out_path = tmp_path / "result.json"
        argv = ["scenario", "run", "--spec", str(spec_path),
                "--gantt", "--json", str(out_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "per-tenant results" in out and "shared PFS" in out
        assert "t0" in out and "t1" in out
        assert "--- t0 ---" in out and "--- t1 ---" in out
        saved = json.loads(out_path.read_text())
        assert saved["kind"] == "scenario" and set(saved["tenants"]) == {
            "t0", "t1"}

    def test_bad_tenant_descriptor_is_clean_error(self, capsys):
        assert main(["scenario", "run", "--tenant", "embedded-io:x"]) == 2
        assert "PIPELINE[:CASE]" in capsys.readouterr().err


class TestJobsPredictedRendering:
    def _patch(self, monkeypatch, response):
        import repro.service.server as server

        monkeypatch.setattr(server, "request",
                            lambda *a, **kw: response)

    def test_list_has_predicted_column(self, capsys, monkeypatch):
        self._patch(monkeypatch, {"jobs": [{
            "id": "j1", "client": "c", "state": "done", "cells": 3,
            "label": "",
            "counters": {"executed": 1, "cache_hits": 0, "predicted": 2},
        }]})
        assert main(["jobs", "list"]) == 0
        out = capsys.readouterr().out
        assert "predicted" in out
        row = [line for line in out.splitlines() if line.startswith("j1")][0]
        assert " 2 " in row or row.rstrip().endswith("2")

    def test_show_renders_predicted_counter(self, capsys, monkeypatch):
        self._patch(monkeypatch, {"job": {
            "id": "j1", "state": "done",
            "counters": {"executed": 1, "cache_hits": 2,
                         "cache_misses": 3, "predicted": 4},
        }})
        assert main(["jobs", "show", "j1"]) == 0
        out = capsys.readouterr().out
        assert "4 predicted (surrogate-screened)" in out
        assert "1 executed" in out and "2 cache hits" in out
