"""Unit tests for repro.sim.process."""

import pytest

from repro.errors import SimulationError
from repro.sim.process import Interrupt, Process


class TestLifecycle:
    def test_non_generator_rejected(self, kernel):
        with pytest.raises(SimulationError):
            Process(kernel, lambda: None)  # type: ignore[arg-type]

    def test_return_value_becomes_event_value(self, kernel):
        def body(k):
            yield k.timeout(1.0)
            return "result"

        p = kernel.process(body(kernel))
        kernel.run()
        assert p.value == "result"

    def test_alive_until_done(self, kernel):
        def body(k):
            yield k.timeout(2.0)

        p = kernel.process(body(kernel))
        assert p.is_alive
        kernel.run(until=1.0)
        assert p.is_alive
        kernel.run()
        assert not p.is_alive

    def test_empty_body_finishes_immediately(self, kernel):
        def body(k):
            return "done"
            yield  # pragma: no cover

        p = kernel.process(body(kernel))
        kernel.run()
        assert p.value == "done"

    def test_spawn_order_is_start_order(self, kernel):
        order = []

        def body(k, name):
            order.append(name)
            yield k.timeout(0.0)

        for n in "abc":
            kernel.process(body(kernel, n))
        kernel.run()
        assert order == ["a", "b", "c"]


class TestWaiting:
    def test_process_waits_on_process(self, kernel):
        def child(k):
            yield k.timeout(3.0)
            return 99

        def parent(k):
            c = k.process(child(k))
            v = yield c
            return (v, k.now)

        p = kernel.process(parent(kernel))
        kernel.run()
        assert p.value == (99, 3.0)

    def test_wait_on_finished_process(self, kernel):
        def child(k):
            yield k.timeout(1.0)
            return "x"

        def parent(k, c):
            yield k.timeout(5.0)
            v = yield c  # already finished
            return v

        c = kernel.process(child(kernel))
        p = kernel.process(parent(kernel, c))
        kernel.run()
        assert p.value == "x"

    def test_exception_propagates_to_waiter(self, kernel):
        def child(k):
            yield k.timeout(1.0)
            raise KeyError("oops")

        def parent(k, c):
            with pytest.raises(KeyError):
                yield c
            return "handled"

        c = kernel.process(child(kernel))
        p = kernel.process(parent(kernel, c))
        kernel.run()
        assert p.value == "handled"


class TestInterrupt:
    def test_interrupt_wakes_blocked_process(self, kernel):
        seen = []

        def sleeper(k):
            try:
                yield k.timeout(100.0)
            except Interrupt as i:
                seen.append((i.cause, k.now))

        def interrupter(k, target):
            yield k.timeout(2.0)
            target.interrupt("wake up")

        t = kernel.process(sleeper(kernel))
        kernel.process(interrupter(kernel, t))
        kernel.run(until=10.0)
        assert seen == [("wake up", 2.0)]

    def test_interrupt_finished_process_raises(self, kernel):
        def quick(k):
            yield k.timeout(0.1)

        p = kernel.process(quick(kernel))
        kernel.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupted_process_can_continue(self, kernel):
        def resilient(k):
            try:
                yield k.timeout(100.0)
            except Interrupt:
                pass
            yield k.timeout(1.0)
            return k.now

        def interrupter(k, target):
            yield k.timeout(2.0)
            target.interrupt()

        p = kernel.process(resilient(kernel))
        kernel.process(interrupter(kernel, p))
        kernel.run()
        assert p.value == 3.0
