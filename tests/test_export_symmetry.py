"""The symmetric exporter surface: to_X/write_X pairs, atomic writes."""

from __future__ import annotations

import inspect
import json
import os

import pytest

from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineExecutor
from repro.core.pipeline import NodeAssignment, build_embedded_pipeline
from repro.errors import ReproError
from repro.machine.presets import paragon
from repro.trace import export


@pytest.fixture(scope="module")
def metered(request):
    from repro.stap.params import STAPParams

    params = STAPParams(
        n_channels=8, n_pulses=32, n_ranges=256, n_beams=6, n_hard_bins=8,
        n_training=64, pulse_len=16, cfar_window=12, cfar_guard=3, pfa=1e-6,
    )
    return PipelineExecutor(
        build_embedded_pipeline(NodeAssignment.balanced(params, 14)),
        params, paragon(), FSConfig("pfs", stripe_factor=8),
        ExecutionConfig(n_cpis=4, warmup=1, metrics_interval=0.25),
    ).run()


PAIRS = [
    ("to_chrome_trace", "write_chrome_trace"),
    ("to_result_json", "write_result_json"),
    ("to_metrics_json", "write_metrics_json"),
    ("to_prometheus", "write_prometheus"),
]


class TestSurfaceSymmetry:
    def test_every_to_has_a_write(self):
        for to_name, write_name in PAIRS:
            assert hasattr(export, to_name)
            assert hasattr(export, write_name)

    def test_writers_share_signature_shape(self):
        for _, write_name in PAIRS:
            sig = inspect.signature(getattr(export, write_name))
            names = list(sig.parameters)
            assert names[0] in ("obj", "result")
            assert names[1] == "path"
            assert "pretty" in sig.parameters
            assert sig.parameters["pretty"].kind is inspect.Parameter.KEYWORD_ONLY

    def test_writers_return_path(self, metered, tmp_path):
        for to_name, write_name in PAIRS:
            path = str(tmp_path / f"{to_name}.out")
            assert getattr(export, write_name)(metered, path) == path
            data = getattr(export, to_name)(metered)
            if isinstance(data, str):
                assert open(path, encoding="utf-8").read() == data
            else:
                assert json.load(open(path, encoding="utf-8")) == json.loads(
                    json.dumps(data)
                )

    def test_atomic_write_leaves_no_temp_droppings(self, metered, tmp_path):
        export.write_metrics_json(metered, str(tmp_path / "m.json"))
        assert os.listdir(tmp_path) == ["m.json"]

    def test_pretty_output_is_indented(self, metered, tmp_path):
        p1 = str(tmp_path / "compact.json")
        p2 = str(tmp_path / "pretty.json")
        export.write_metrics_json(metered, p1)
        export.write_metrics_json(metered, p2, pretty=True)
        compact, pretty = open(p1).read(), open(p2).read()
        assert json.loads(compact) == json.loads(pretty)
        assert len(pretty.splitlines()) > len(compact.splitlines())


class TestChromeTraceMerge:
    def test_accepts_collector_and_result(self, metered):
        from_trace = export.to_chrome_trace(metered.trace)
        from_result = export.to_chrome_trace(metered)
        # The result form appends the metrics counter tracks.
        assert len(from_result) > len(from_trace)
        counters = [e for e in from_result if e["ph"] == "C"]
        assert counters
        metrics_pid = counters[0]["pid"]
        meta = [
            e for e in from_result
            if e["ph"] == "M" and e["pid"] == metrics_pid
        ]
        assert meta[0]["args"]["name"] == "metrics"
        assert all(e["ph"] != "C" for e in from_trace)

    def test_counter_track_values_match_series(self, metered):
        events = export.to_chrome_trace(metered)
        qname, series = sorted(metered.metrics["series"].items())[0]
        track = [e for e in events if e["ph"] == "C" and e["name"] == qname]
        assert [e["args"]["value"] for e in track] == series["v"]
        assert [e["ts"] for e in track] == [t * 1e6 for t in series["t"]]

    def test_rejects_unknown_objects(self):
        with pytest.raises(TypeError, match="TraceCollector"):
            export.to_chrome_trace(42)


class TestMetricsExports:
    def test_metrics_json_requires_metrics(self, metered):
        import dataclasses

        plain = dataclasses.replace(metered, metrics=None)
        with pytest.raises(ReproError, match="no metrics"):
            export.to_metrics_json(plain)

    def test_metrics_json_passes_dict_through(self, metered):
        assert export.to_metrics_json(metered.metrics) is metered.metrics

    def test_prometheus_format(self, metered):
        text = export.to_prometheus(metered)
        lines = text.splitlines()
        assert any(l.startswith("# HELP ") for l in lines)
        assert "# TYPE task_phase_seconds_total counter" in lines
        assert "# TYPE pfs_server_queue_depth gauge" in lines
        assert "# TYPE cpi_latency_seconds histogram" in lines
        # Histogram exposition: cumulative buckets, +Inf, sum and count.
        buckets = [l for l in lines if l.startswith("cpi_latency_seconds_bucket")]
        assert buckets and any('le="+Inf"' in l for l in buckets)
        counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
        assert counts == sorted(counts)  # cumulative
        assert any(l.startswith("cpi_latency_seconds_sum") for l in lines)
        assert any(l.startswith("cpi_latency_seconds_count") for l in lines)
        # Every sample line parses as "name_or_qname value".
        for line in lines:
            if line.startswith("#"):
                continue
            _, value = line.rsplit(" ", 1)
            float(value)

    def test_type_headers_emitted_once_per_base_name(self, metered):
        text = export.to_prometheus(metered)
        type_lines = [
            l for l in text.splitlines() if l.startswith("# TYPE ")
        ]
        assert len(type_lines) == len(set(type_lines))


class TestDeprecatedShapes:
    def test_indent_kwarg_warns_but_works(self, metered, tmp_path):
        path = str(tmp_path / "r.json")
        with pytest.warns(DeprecationWarning, match="pretty"):
            out = export.write_result_json(metered, path, indent=2)
        assert out == path
        payload = json.load(open(path))
        assert payload["kind"] == "PipelineResult"

    def test_no_warning_without_indent(self, metered, tmp_path, recwarn):
        export.write_result_json(metered, str(tmp_path / "r.json"))
        assert not [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]
