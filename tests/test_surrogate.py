"""Tests for analytic surrogate screening (repro.bench.surrogate).

Covers the calibration math, the screening plan's decision rules, the
``source="predicted"`` result plumbing through store/engine/service, and
the guarantee that ``screening="off"`` is byte-identical to the plain
engine path.
"""

import json
import math
from dataclasses import replace

import pytest

from repro.bench.engine import (
    DiskFault,
    ExperimentSpec,
    SweepRunner,
    run_spec,
)
from repro.bench.store import ResultStore
from repro.bench.surrogate import (
    DEFAULT_BOUND,
    SCREENING_MODES,
    SurrogateScreen,
    group_key,
    io_boundary_margin,
    model_for_spec,
    pair_key,
    predictable,
    predicted_result,
    scenario_key,
)
from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineResult
from repro.core.pipeline import NodeAssignment
from repro.errors import ConfigurationError

FAST = ExecutionConfig(n_cpis=4, warmup=1)

#: Stripe factors simulated into the calibration store fixture.
CAL_SFS = (4, 8, 16)


def make_spec(params, pipeline="embedded", sf=8, **kw):
    kw.setdefault("assignment", NodeAssignment.balanced(params, 14))
    kw.setdefault("fs", FSConfig("pfs", sf))
    kw.setdefault("params", params)
    kw.setdefault("cfg", FAST)
    return ExperimentSpec(pipeline=pipeline, **kw)


@pytest.fixture(scope="module")
def cal_params():
    from repro.stap.params import STAPParams

    return STAPParams(
        n_channels=8, n_pulses=32, n_ranges=256, n_beams=6, n_hard_bins=8,
        n_training=64, pulse_len=16, cfar_window=12, cfar_guard=3, pfa=1e-6,
    )


@pytest.fixture(scope="module")
def cal_store(tmp_path_factory, cal_params):
    """A store holding simulated cells that calibrate the screen:
    embedded + separate at three stripe factors (same scenarios, so the
    strategy pair is calibrated too)."""
    store = ResultStore(tmp_path_factory.mktemp("surrogate") / "store")
    specs = [
        make_spec(cal_params, pipeline=p, sf=sf)
        for p in ("embedded", "separate")
        for sf in CAL_SFS
    ]
    with SweepRunner(jobs=1, store=store) as runner:
        runner.run(specs)
    return store


class TestPredictable:
    def test_plain_spec_is_predictable(self, cal_params):
        assert predictable(make_spec(cal_params))

    def test_any_fault_defeats_prediction(self, cal_params):
        spec = make_spec(cal_params, disk_fault=DiskFault(server=0, slow_factor=4.0))
        assert not predictable(spec)


class TestScreeningField:
    def test_validated(self, cal_params):
        for mode in SCREENING_MODES:
            assert make_spec(cal_params, screening=mode).screening == mode
        with pytest.raises(ConfigurationError):
            make_spec(cal_params, screening="sometimes")

    def test_excluded_from_identity(self, cal_params):
        base = make_spec(cal_params)
        screened = replace(base, screening="screen")
        assert screened.spec_hash() == base.spec_hash()
        assert screened.to_dict() == base.to_dict()
        assert "screening" not in base.to_dict()
        # Equality ignores the execution policy too (compare=False).
        assert screened == base


class TestKeys:
    def test_scenario_key_ignores_strategy_only(self, cal_params):
        emb = make_spec(cal_params, pipeline="embedded", sf=8)
        sep = make_spec(cal_params, pipeline="separate", sf=8)
        other = make_spec(cal_params, pipeline="embedded", sf=16)
        assert scenario_key(emb) == scenario_key(sep)
        assert scenario_key(emb) != scenario_key(other)

    def test_group_and_pair_keys(self, cal_params):
        emb = make_spec(cal_params, pipeline="embedded")
        sep = make_spec(cal_params, pipeline="separate")
        assert group_key(emb) != group_key(sep)
        assert pair_key(emb, sep) == pair_key(sep, emb)


class TestModelForSpec:
    def test_positive_predictions(self, cal_params):
        model = model_for_spec(make_spec(cal_params))
        assert model.predicted_throughput() > 0
        assert model.predicted_latency() > 0

    def test_io_margin_finite_for_io_pipelines(self, cal_params):
        margin = io_boundary_margin(model_for_spec(make_spec(cal_params)))
        assert math.isfinite(margin) and margin >= 0


class TestCalibration:
    def test_groups_calibrated_from_store(self, cal_store, cal_params):
        screen = SurrogateScreen(cal_store)
        cal = screen._group_calibration(make_spec(cal_params))
        assert cal.n == len(CAL_SFS)
        assert 0 < cal.bound < DEFAULT_BOUND
        assert cal.scale_tp > 0 and cal.scale_lat > 0

    def test_pair_bound_tighter_than_default(self, cal_store, cal_params):
        screen = SurrogateScreen(cal_store)
        pb = screen.pair_bound(
            make_spec(cal_params, pipeline="embedded"),
            make_spec(cal_params, pipeline="separate"),
        )
        assert pb is not None and 0 < pb < DEFAULT_BOUND

    def test_unknown_group_keeps_default_bound(self, cal_store, cal_params):
        screen = SurrogateScreen(cal_store)
        foreign = make_spec(cal_params, machine="sp", fs=FSConfig("piofs", 8))
        cal = screen._group_calibration(foreign)
        assert cal.n == 0
        assert cal.bound == DEFAULT_BOUND

    def test_calibration_cells_fall_within_own_bound(self, cal_store, cal_params):
        """The bound must cover at least the residuals it was built from."""
        screen = SurrogateScreen(cal_store)
        for sf in CAL_SFS:
            spec = make_spec(cal_params, sf=sf)
            pred = screen.predict(spec)
            sim = cal_store.get(spec)
            assert sim is not None
            assert abs(pred.throughput / sim.throughput - 1) <= pred.bound_tp
            assert abs(pred.latency / sim.latency - 1) <= pred.bound_lat


class TestPlan:
    def test_off_simulates_everything(self, cal_params):
        specs = [make_spec(cal_params, sf=sf) for sf in (4, 8)]
        plan = SurrogateScreen(None).plan(specs, "off")
        assert plan.n_simulated == 2 and plan.n_predicted == 0
        assert all(d.reason == "screening-off" for d in plan.decisions)

    def test_bad_mode_rejected(self, cal_params):
        with pytest.raises(ConfigurationError):
            SurrogateScreen(None).plan([make_spec(cal_params)], "sometimes")

    def test_uncalibrated_screen_degrades_to_simulation(self, cal_params):
        plan = SurrogateScreen(None).plan(
            [make_spec(cal_params, sf=sf) for sf in (4, 8)], "screen"
        )
        assert plan.n_predicted == 0
        assert all(d.reason == "calibration" for d in plan.decisions)

    def test_predict_all_still_simulates_faults(self, cal_store, cal_params):
        specs = [
            make_spec(cal_params),
            make_spec(cal_params, disk_fault=DiskFault(server=0, slow_factor=4.0)),
        ]
        plan = SurrogateScreen(cal_store).plan(specs, "predict-all")
        assert [d.action for d in plan.decisions] == ["predict", "simulate"]
        assert plan.decisions[1].reason == "unpredictable"

    def test_screen_predicts_calibrated_cells(self, cal_store, cal_params):
        specs = [make_spec(cal_params, sf=sf) for sf in (4, 8, 16, 32)]
        plan = SurrogateScreen(cal_store).plan(specs, "screen")
        # No strategy siblings in the batch and the group is calibrated,
        # so every cell is either clear or parked on a boundary.
        assert all(
            d.reason in ("clear", "bottleneck") for d in plan.decisions
        )
        assert plan.n_predicted >= 1

    def test_decisions_carry_predictions(self, cal_store, cal_params):
        plan = SurrogateScreen(cal_store).plan([make_spec(cal_params)], "screen")
        (d,) = plan.decisions
        assert d.prediction is not None
        assert d.prediction.bound > 0
        assert d.prediction.bottleneck_task in d.prediction.task_times


class TestPredictedResult:
    def test_round_trip_keeps_provenance(self, cal_store, cal_params):
        spec = make_spec(cal_params)
        pred = SurrogateScreen(cal_store).predict(spec)
        result = predicted_result(spec, pred)
        assert result.source == "predicted"
        d = result.to_dict()
        assert d["source"] == "predicted"
        assert d["prediction_bound"] == pytest.approx(pred.bound)
        back = PipelineResult.from_dict(d)
        assert back.source == "predicted"
        assert back.prediction_bound == pytest.approx(pred.bound)
        assert back.throughput == pytest.approx(pred.throughput)

    def test_simulated_results_carry_no_source_key(self, cal_params):
        result = run_spec(make_spec(cal_params))
        assert result.source == "simulated"
        assert "source" not in result.to_dict()
        assert "prediction_bound" not in result.to_dict()


class TestStoreRules:
    def test_simulated_upgrades_predicted(self, tmp_path, cal_store, cal_params):
        store = ResultStore(tmp_path / "store")
        spec = make_spec(cal_params)
        pred = SurrogateScreen(cal_store).predict(spec)
        store.put_dict(spec, predicted_result(spec, pred).to_dict())
        assert store.get_dict(spec)["source"] == "predicted"
        simulated = run_spec(spec)
        store.put(spec, simulated)
        assert store.get_dict(spec).get("source", "simulated") == "simulated"

    def test_predicted_never_overwrites_simulated(
        self, tmp_path, cal_store, cal_params
    ):
        store = ResultStore(tmp_path / "store")
        spec = make_spec(cal_params)
        simulated = run_spec(spec)
        store.put(spec, simulated)
        pred = SurrogateScreen(cal_store).predict(spec)
        store.put_dict(spec, predicted_result(spec, pred).to_dict())
        kept = store.get_dict(spec)
        assert kept.get("source", "simulated") == "simulated"
        assert kept["measurement"]["throughput"] == pytest.approx(
            simulated.throughput
        )

    def test_entries_report_source(self, tmp_path, cal_store, cal_params):
        store = ResultStore(tmp_path / "store")
        spec = make_spec(cal_params)
        pred = SurrogateScreen(cal_store).predict(spec)
        store.put_dict(spec, predicted_result(spec, pred).to_dict())
        (entry,) = store.entries()
        assert entry["source"] == "predicted"


class TestEngineEndToEnd:
    def test_screen_answers_from_surrogate(self, tmp_path, cal_store, cal_params):
        # Seed a fresh store with the calibration cells, then sweep new
        # stripe factors under screening: far-from-boundary cells come
        # back predicted and are counted as such.
        store = ResultStore(tmp_path / "store")
        cal_specs = [
            make_spec(cal_params, pipeline=p, sf=sf)
            for p in ("embedded", "separate")
            for sf in CAL_SFS
        ]
        new_specs = [
            make_spec(cal_params, sf=sf, screening="screen")
            for sf in (32, 64, 128)
        ]
        with SweepRunner(jobs=1, store=store) as runner:
            runner.run(cal_specs)
            results = runner.run(new_specs)
            assert runner.predicted >= 1
        predicted = [r for r in results if r.source == "predicted"]
        assert len(predicted) == runner.predicted
        for r in predicted:
            assert r.prediction_bound is not None and r.prediction_bound > 0

    def test_cached_simulation_beats_prediction(
        self, tmp_path, cal_store, cal_params
    ):
        # A screened cell whose spec is already simulated in the store
        # must be served the cached simulation, not a fresh prediction.
        store = ResultStore(tmp_path / "store")
        cal_specs = [
            make_spec(cal_params, pipeline=p, sf=sf)
            for p in ("embedded", "separate")
            for sf in CAL_SFS
        ]
        probe = make_spec(cal_params, sf=64)
        with SweepRunner(jobs=1, store=store) as runner:
            runner.run(cal_specs)
            simulated = runner.run_one(probe)
            results = runner.run(
                [replace(probe, screening="screen")]
            )
            assert runner.predicted == 0
        assert results[0].source == "simulated"
        assert results[0].to_dict() == simulated.to_dict()

    def test_predicted_cache_entry_never_serves_full_sim(
        self, tmp_path, cal_store, cal_params
    ):
        store = ResultStore(tmp_path / "store")
        spec = make_spec(cal_params, sf=64)
        pred = SurrogateScreen(cal_store).predict(spec)
        store.put_dict(spec, predicted_result(spec, pred).to_dict())
        with SweepRunner(jobs=1, store=store) as runner:
            result = runner.run_one(spec)   # screening="off"
            assert runner.cache_hits == 0
        assert result.source == "simulated"
        # And the store entry was upgraded in place.
        assert store.get_dict(spec).get("source", "simulated") == "simulated"

    def test_screening_off_byte_identical(self, tmp_path, cal_params):
        spec = make_spec(cal_params, sf=8)
        direct = run_spec(spec).to_dict()
        with SweepRunner(jobs=1, store=ResultStore(tmp_path / "store")) as runner:
            engine_off = runner.run_one(replace(spec, screening="off")).to_dict()
        assert json.dumps(engine_off, sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )
