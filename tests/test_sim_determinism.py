"""Golden firing-order test: the kernel's exact interleaving contract.

The content-addressed result cache treats ``run_spec`` as a pure
function, so the kernel's event ordering is load-bearing: *any* change
to the interleaving of zero-delay events, equal-time timeouts, or
resource grants silently changes simulated timings and invalidates every
cached result.  This test pins the exact resume order of a scenario that
exercises every ordering-sensitive mechanism at once:

* zero-delay events (now-lane entries) racing heap entries at the same
  timestamp;
* equal-time timeouts, which must fire in creation order;
* uncontended resource grants (the born-fired fast path) interleaved
  with contended handoffs;
* store put/get handoffs between producers and consumers.

The expected trace below was recorded from the pre-overhaul kernel
(heap-only scheduling, closure entries, no grant fast path).  The
optimized kernel must reproduce it byte for byte — if an intentional
semantic change ever alters it, every cached experiment result must be
regenerated along with this trace.
"""

from __future__ import annotations

from repro.sim.kernel import Kernel
from repro.sim.resources import Resource, Store

GOLDEN_TRACE = [
    ("u1", "start", 0.0),
    ("u2", "start", 0.0),
    ("u1", "granted-idle", 0.0),
    ("z1", "ev", 0.0, "z1"),
    ("c1", "granted-hot", 0.0),
    ("z2", "ev", 0.0, "z2"),
    ("u1", "t0", 0.0),
    ("z1", "after-t0", 0.0),
    ("z2", "after-t0", 0.0),
    ("u2", "granted-idle", 0.0),
    ("u2", "t0", 0.0),
    ("c1", "released-hot", 0.25),
    ("c2", "granted-hot", 0.25),
    ("prod", "put", 0.5),
    ("c2", "released-hot", 0.5),
    ("k1", "got", 0.5, "a"),
    ("k2", "got", 0.5, "b"),
    ("e1", "eq", 1.0),
    ("e2", "eq", 1.0),
    ("u1", "t1", 1.0),
    ("u2", "t1", 1.0),
]


def run_scenario():
    k = Kernel()
    log = []

    res_idle = Resource(k, capacity=1, name="idle")
    res_hot = Resource(k, capacity=1, name="hot")
    store = Store(k, name="box")

    def uncontended(k, name):
        log.append((name, "start", k.now))
        yield res_idle.request()
        log.append((name, "granted-idle", k.now))
        yield k.timeout(0.0)
        log.append((name, "t0", k.now))
        res_idle.release()
        yield k.timeout(1.0)
        log.append((name, "t1", k.now))

    def contender(k, name, hold):
        yield res_hot.request()
        log.append((name, "granted-hot", k.now))
        yield k.timeout(hold)
        res_hot.release()
        log.append((name, "released-hot", k.now))

    def zero_delay_chain(k, name):
        ev = k.event()
        ev.succeed(name)
        v = yield ev
        log.append((name, "ev", k.now, v))
        yield k.timeout(0.0)
        log.append((name, "after-t0", k.now))

    def equal_timeouts(k, name, d):
        yield k.timeout(d)
        log.append((name, "eq", k.now))

    def producer(k):
        yield k.timeout(0.5)
        store.put("a")
        store.put("b")
        log.append(("prod", "put", k.now))

    def consumer(k, name):
        item = yield store.get()
        log.append((name, "got", k.now, item))

    k.process(uncontended(k, "u1"))
    k.process(zero_delay_chain(k, "z1"))
    k.process(contender(k, "c1", 0.25))
    k.process(contender(k, "c2", 0.25))
    k.process(equal_timeouts(k, "e1", 1.0))
    k.process(equal_timeouts(k, "e2", 1.0))
    k.process(uncontended(k, "u2"))
    k.process(consumer(k, "k1"))
    k.process(producer(k))
    k.process(zero_delay_chain(k, "z2"))
    k.process(consumer(k, "k2"))
    k.run()
    return log


def test_golden_firing_order_matches_pre_overhaul_kernel():
    assert run_scenario() == GOLDEN_TRACE


def test_scenario_is_repeatable():
    assert run_scenario() == run_scenario()


def test_step_peek_parity_with_run():
    """Driving the golden scenario one step() at a time is equivalent
    to run(), and peek() always names the time the next step fires at.

    run() inlines step()'s pop-and-dispatch (plus the resume cycle) for
    speed; this pins the contract that the inlining is purely an
    optimization.  peek() must be a pure observer: its returned time is
    exactly the kernel clock after the following step(), and interleaving
    it between steps must not perturb the firing order.
    """
    k = Kernel()
    log = []

    res_idle = Resource(k, capacity=1, name="idle")
    res_hot = Resource(k, capacity=1, name="hot")
    store = Store(k, name="box")

    def uncontended(k, name):
        log.append((name, "start", k.now))
        yield res_idle.request()
        log.append((name, "granted-idle", k.now))
        yield k.timeout(0.0)
        log.append((name, "t0", k.now))
        res_idle.release()
        yield k.timeout(1.0)
        log.append((name, "t1", k.now))

    def contender(k, name, hold):
        yield res_hot.request()
        log.append((name, "granted-hot", k.now))
        yield k.timeout(hold)
        res_hot.release()
        log.append((name, "released-hot", k.now))

    def zero_delay_chain(k, name):
        ev = k.event()
        ev.succeed(name)
        v = yield ev
        log.append((name, "ev", k.now, v))
        yield k.timeout(0.0)
        log.append((name, "after-t0", k.now))

    def equal_timeouts(k, name, d):
        yield k.timeout(d)
        log.append((name, "eq", k.now))

    def producer(k):
        yield k.timeout(0.5)
        store.put("a")
        store.put("b")
        log.append(("prod", "put", k.now))

    def consumer(k, name):
        item = yield store.get()
        log.append((name, "got", k.now, item))

    k.process(uncontended(k, "u1"))
    k.process(zero_delay_chain(k, "z1"))
    k.process(contender(k, "c1", 0.25))
    k.process(contender(k, "c2", 0.25))
    k.process(equal_timeouts(k, "e1", 1.0))
    k.process(equal_timeouts(k, "e2", 1.0))
    k.process(uncontended(k, "u2"))
    k.process(consumer(k, "k1"))
    k.process(producer(k))
    k.process(zero_delay_chain(k, "z2"))
    k.process(consumer(k, "k2"))

    steps = 0
    while True:
        t = k.peek()
        if t is None:
            break
        assert t >= k.now
        k.step()
        steps += 1
        # step() never advances the clock past the peeked time: a lane/due
        # entry fires at the current time, a calendar extraction at t.
        assert k.now == t
    assert log == GOLDEN_TRACE
    # Every logged event corresponds to at least one step; the scenario
    # also schedules internal resume/grant traffic, so strictly more.
    assert steps > len(GOLDEN_TRACE)
