"""Tests for pipeline builders, node assignments, and the combination
transform."""

import pytest

from repro.errors import ConfigurationError, PipelineError
from repro.core.pipeline import (
    NodeAssignment,
    build_embedded_pipeline,
    build_separate_io_pipeline,
    combine_pulse_cfar,
)
from repro.core.task import TaskKind
from repro.stap.costs import STAPCosts
from repro.stap.params import STAPParams


class TestNodeAssignment:
    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigurationError):
            NodeAssignment(0, 1, 1, 1, 1, 1, 1)

    def test_total(self):
        a = NodeAssignment(6, 2, 6, 2, 6, 2, 1)
        assert a.total_without_io == 25

    def test_scaled(self):
        a = NodeAssignment(6, 2, 6, 2, 6, 2, 1, io_nodes=6).scaled(2)
        assert a.total_without_io == 50 and a.io_nodes == 12

    def test_balanced_total_exact(self, small_params):
        for total in (7, 10, 25, 50, 100):
            a = NodeAssignment.balanced(small_params, total)
            assert a.total_without_io == total

    def test_balanced_minimum_one_each(self, small_params):
        a = NodeAssignment.balanced(small_params, 7)
        assert min(
            a.doppler, a.easy_weight, a.hard_weight, a.easy_bf,
            a.hard_bf, a.pulse_compr, a.cfar,
        ) == 1

    def test_balanced_too_few_nodes(self, small_params):
        with pytest.raises(ConfigurationError):
            NodeAssignment.balanced(small_params, 6)

    def test_balanced_proportional_to_work(self, small_params):
        a = NodeAssignment.balanced(small_params, 100)
        costs = STAPCosts(small_params)
        counts = [a.doppler, a.easy_weight, a.hard_weight, a.easy_bf,
                  a.hard_bf, a.pulse_compr, a.cfar]
        times = [costs.task_flops(i) / counts[i] for i in range(7)]
        # Balanced: no task more than ~2.2x slower than another.
        assert max(times) / min(times) < 2.2

    def test_balanced_pc_cfar_not_meaningful_bottleneck(self):
        """The paper's §6 precondition: T_max is neither task 5 nor 6.

        Integer node counts can leave PC within rounding noise of the
        true bottleneck (0.6% at 25 nodes); what matters for §6 is that
        PC/CFAR never exceed the rest by a meaningful margin, so that
        combining them cannot raise throughput.
        """
        p = STAPParams()
        costs = STAPCosts(p)
        for total in (25, 50, 100):
            a = NodeAssignment.balanced(p, total)
            counts = [a.doppler, a.easy_weight, a.hard_weight, a.easy_bf,
                      a.hard_bf, a.pulse_compr, a.cfar]
            times = [costs.task_flops(i) / counts[i] for i in range(7)]
            others_max = max(times[:5])
            assert max(times[5], times[6]) <= 1.03 * others_max, (total, times)

    def test_paper_cases(self):
        for n, total in ((1, 25), (2, 50), (3, 100)):
            a = NodeAssignment.case(n)
            assert a.total_without_io == total
            assert a.io_nodes == a.doppler

    def test_invalid_case(self):
        with pytest.raises(ConfigurationError):
            NodeAssignment.case(4)


class TestBuilders:
    @pytest.fixture
    def a(self, small_params):
        return NodeAssignment.balanced(small_params, 20, io_nodes=4)

    def test_embedded_has_seven_tasks(self, a):
        spec = build_embedded_pipeline(a)
        assert len(spec.tasks) == 7
        assert spec.task("doppler").kind is TaskKind.DOPPLER_EMBEDDED_IO
        assert not spec.has_task("read")

    def test_separate_has_eight_tasks(self, a):
        spec = build_separate_io_pipeline(a)
        assert len(spec.tasks) == 8
        assert spec.task("read").kind is TaskKind.PARALLEL_READ
        assert spec.task("read").n_nodes == 4
        assert spec.task("doppler").kind is TaskKind.DOPPLER

    def test_separate_defaults_io_to_doppler_count(self, small_params):
        a = NodeAssignment.balanced(small_params, 20)
        spec = build_separate_io_pipeline(a)
        assert spec.task("read").n_nodes == a.doppler

    def test_total_nodes(self, a):
        assert build_embedded_pipeline(a).total_nodes == 20
        assert build_separate_io_pipeline(a).total_nodes == 24

    def test_instances_contiguous_disjoint(self, a):
        spec = build_separate_io_pipeline(a)
        inst = spec.instances()
        seen = []
        for t in spec.tasks:
            seen.extend(inst[t.name].ranks)
        assert seen == list(range(spec.total_nodes))

    def test_temporal_edges_into_weights_only(self, a):
        spec = build_embedded_pipeline(a)
        from repro.core.graph import DependencyKind

        tds = [e for e in spec.edges if e.kind is DependencyKind.TEMPORAL]
        assert {e.dst for e in tds} == {"easy_weight", "hard_weight"}
        assert all(e.src == "doppler" for e in tds)

    def test_missing_task_lookup(self, a):
        spec = build_embedded_pipeline(a)
        with pytest.raises(PipelineError):
            spec.task("nonexistent")


class TestCombine:
    @pytest.fixture
    def a(self, small_params):
        return NodeAssignment.balanced(small_params, 20, io_nodes=4)

    def test_merges_nodes(self, a):
        spec7 = build_embedded_pipeline(a)
        spec6 = combine_pulse_cfar(spec7)
        assert len(spec6.tasks) == 6
        pc, cf = spec7.task("pulse_compr"), spec7.task("cfar")
        assert spec6.task("pc_cfar").n_nodes == pc.n_nodes + cf.n_nodes

    def test_total_nodes_unchanged(self, a):
        spec7 = build_embedded_pipeline(a)
        assert combine_pulse_cfar(spec7).total_nodes == spec7.total_nodes

    def test_edges_redirected(self, a):
        spec6 = combine_pulse_cfar(build_embedded_pipeline(a))
        dsts = {e.dst for e in spec6.edges}
        srcs = {e.src for e in spec6.edges}
        assert "pulse_compr" not in dsts | srcs and "cfar" not in dsts | srcs
        assert "pc_cfar" in dsts

    def test_internal_edge_removed(self, a):
        spec6 = combine_pulse_cfar(build_embedded_pipeline(a))
        assert not any(e.src == e.dst for e in spec6.edges)

    def test_works_on_separate_io_pipeline(self, a):
        spec = combine_pulse_cfar(build_separate_io_pipeline(a))
        assert len(spec.tasks) == 7 and spec.has_task("read")

    def test_double_combine_rejected(self, a):
        spec6 = combine_pulse_cfar(build_embedded_pipeline(a))
        with pytest.raises(PipelineError):
            combine_pulse_cfar(spec6)
