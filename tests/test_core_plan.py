"""Tests for the execution plan's routing tables.

The key invariants: every unit of every stream is routed exactly once,
producer routes and consumer expectations agree, and byte accounting
matches the cost models.
"""

import pytest

from repro.core.pipeline import (
    NodeAssignment,
    build_embedded_pipeline,
    build_separate_io_pipeline,
    combine_pulse_cfar,
)
from repro.core.plan import PipelinePlan
from repro.stap.costs import STAPCosts


@pytest.fixture
def plan(small_params):
    a = NodeAssignment.balanced(small_params, 20, io_nodes=4)
    return PipelinePlan(build_separate_io_pipeline(a), small_params)


@pytest.fixture
def plan_embedded(small_params):
    a = NodeAssignment.balanced(small_params, 20)
    return PipelinePlan(build_embedded_pipeline(a), small_params)


@pytest.fixture
def plan_combined(small_params):
    a = NodeAssignment.balanced(small_params, 20)
    return PipelinePlan(combine_pulse_cfar(build_embedded_pipeline(a)), small_params)


class TestStructure:
    def test_first_and_sink_tasks(self, plan, plan_embedded, plan_combined):
        assert plan.first_task == "read" and plan.sink_task == "cfar"
        assert plan_embedded.first_task == "doppler"
        assert plan_combined.sink_task == "pc_cfar" and plan_combined.combined

    def test_ranks_disjoint_and_complete(self, plan):
        all_ranks = []
        for name in plan.spec.task_names():
            all_ranks.extend(plan.ranks(name))
        assert sorted(all_ranks) == list(range(plan.spec.total_nodes))


class TestDopplerRouting:
    def test_bf_routes_cover_all_rows(self, plan_embedded, small_params):
        plan = plan_embedded
        for easy, total_rows in ((True, small_params.n_easy_bins), (False, small_params.n_hard_bins)):
            for dop in range(plan.ranges_doppler.parts):
                rows_covered = sum(
                    hi - lo for _, (lo, hi), _ in plan.doppler_to_bf(dop, easy)
                )
                assert rows_covered == total_rows

    def test_bf_route_bytes_match_cost_model(self, plan_embedded, small_params):
        plan = plan_embedded
        costs = STAPCosts(small_params)
        total = sum(
            nb
            for dop in range(plan.ranges_doppler.parts)
            for _, _, nb in plan.doppler_to_bf(dop, True)
        )
        assert total == costs.doppler_easy_bytes()

    def test_weight_routes_cover_all_gates(self, plan_embedded, small_params):
        plan = plan_embedded
        cols_seen = []
        for dop in range(plan.ranges_doppler.parts):
            routes = plan.doppler_to_weights(dop, easy=True)
            if routes:
                cols_seen.extend(routes[0][2])  # same cols for every consumer
        assert sorted(cols_seen) == list(range(len(plan.train_gates)))

    def test_weight_producers_match_gate_owners(self, plan_embedded):
        plan = plan_embedded
        expected = plan.weight_expected_producers()
        for dop in range(plan.ranges_doppler.parts):
            has_route = bool(plan.doppler_to_weights(dop, True))
            assert (dop in expected) == has_route


class TestWeightToBF:
    def test_rows_conserved(self, plan_embedded, small_params):
        plan = plan_embedded
        for easy, rows_w, total in (
            (True, plan.rows_easy_w, small_params.n_easy_bins),
            (False, plan.rows_hard_w, small_params.n_hard_bins),
        ):
            covered = sum(
                hi - lo
                for w in range(rows_w.parts)
                for _, (lo, hi), _ in plan.weights_to_bf(w, easy)
            )
            assert covered == total

    def test_bf_expectations_mirror_routes(self, plan_embedded):
        plan = plan_embedded
        for easy, rows_bf, rows_w in (
            (True, plan.rows_easy_bf, plan.rows_easy_w),
            (False, plan.rows_hard_bf, plan.rows_hard_w),
        ):
            # build reverse map from producer routes
            incoming = {c: set() for c in range(rows_bf.parts)}
            for w in range(rows_w.parts):
                for c, _, _ in plan.weights_to_bf(w, easy):
                    incoming[c].add(w)
            for c in range(rows_bf.parts):
                assert set(plan.bf_expected_weight_producers(c, easy)) == incoming[c]


class TestBFToPC:
    def test_all_bins_routed_once(self, plan_embedded, small_params):
        plan = plan_embedded
        routed = []
        for easy, rows_bf, labels in (
            (True, plan.rows_easy_bf, plan.easy_labels),
            (False, plan.rows_hard_bf, plan.hard_labels),
        ):
            for bf in range(rows_bf.parts):
                for _, (lo, hi), _ in plan.bf_to_pc(bf, easy):
                    routed.extend(labels[lo:hi])
        assert sorted(routed) == list(range(small_params.n_doppler_bins))

    def test_pc_expectations_mirror_routes(self, plan_embedded):
        plan = plan_embedded
        incoming = {c: set() for c in range(plan.bins_pc.parts)}
        for easy, rows_bf, task in (
            (True, plan.rows_easy_bf, "easy_bf"),
            (False, plan.rows_hard_bf, "hard_bf"),
        ):
            for bf in range(rows_bf.parts):
                for c, _, _ in plan.bf_to_pc(bf, easy):
                    incoming[c].add((task, bf))
        for c in range(plan.bins_pc.parts):
            assert set(plan.pc_expected_bf_producers(c)) == incoming[c]

    def test_same_for_combined_pipeline(self, plan_combined, small_params):
        plan = plan_combined
        routed = []
        for easy, rows_bf, labels in (
            (True, plan.rows_easy_bf, plan.easy_labels),
            (False, plan.rows_hard_bf, plan.hard_labels),
        ):
            for bf in range(rows_bf.parts):
                for _, (lo, hi), _ in plan.bf_to_pc(bf, easy):
                    routed.extend(labels[lo:hi])
        assert sorted(routed) == list(range(small_params.n_doppler_bins))


class TestPCToCFAR:
    def test_bins_conserved(self, plan, small_params):
        covered = sum(
            hi - lo
            for pc in range(plan.bins_pc.parts)
            for _, (lo, hi), _ in plan.pc_to_cfar(pc)
        )
        assert covered == small_params.n_doppler_bins

    def test_combined_pipeline_has_no_edge(self, plan_combined):
        from repro.errors import PipelineError

        with pytest.raises(PipelineError):
            plan_combined.pc_to_cfar(0)
        with pytest.raises(PipelineError):
            plan_combined.cfar_expected_pc_producers(0)


class TestReadToDoppler:
    def test_ranges_conserved(self, plan, small_params):
        covered = sum(
            hi - lo
            for rd in range(plan.ranges_read.parts)
            for _, (lo, hi), _ in plan.read_to_doppler(rd)
        )
        assert covered == small_params.n_ranges

    def test_doppler_expectations_mirror_routes(self, plan):
        incoming = {c: set() for c in range(plan.ranges_doppler.parts)}
        for rd in range(plan.ranges_read.parts):
            for c, _, _ in plan.read_to_doppler(rd):
                incoming[c].add(rd)
        for c in range(plan.ranges_doppler.parts):
            assert set(plan.doppler_expected_read_producers(c)) == incoming[c]

    def test_embedded_plan_raises(self, plan_embedded):
        from repro.errors import PipelineError

        with pytest.raises(PipelineError):
            plan_embedded.read_to_doppler(0)
