"""Tests for beamforming, pulse compression, and CFAR."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stap.beamform import beamform
from repro.stap.cfar import Detection, ca_cfar, cfar_threshold_factor
from repro.stap.pulse import (
    lfm_replica,
    pulse_compress,
    pulse_compress_direct,
    segment_length,
)
from repro.stap.weights import WeightSet


class TestBeamform:
    def test_shapes(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((5, 8, 64)).astype(np.complex64)
        w = WeightSet(rng.standard_normal((5, 8, 3)).astype(np.complex64), tuple(range(5)), 0)
        y = beamform(data, w)
        assert y.shape == (5, 3, 64) and y.dtype == np.complex64

    def test_matches_manual_loop(self):
        rng = np.random.default_rng(1)
        data = (rng.standard_normal((2, 4, 8)) + 1j * rng.standard_normal((2, 4, 8))).astype(np.complex64)
        wts = (rng.standard_normal((2, 4, 3)) + 1j * rng.standard_normal((2, 4, 3))).astype(np.complex64)
        y = beamform(data, WeightSet(wts, (0, 1), 0))
        for b in range(2):
            for k in range(3):
                manual = wts[b, :, k].conj() @ data[b]
                assert np.allclose(y[b, k], manual, atol=1e-5)

    def test_bin_count_mismatch(self):
        data = np.zeros((3, 4, 8), np.complex64)
        w = WeightSet(np.zeros((2, 4, 1), np.complex64), (0, 1), 0)
        with pytest.raises(ConfigurationError):
            beamform(data, w)

    def test_dof_mismatch(self):
        data = np.zeros((2, 4, 8), np.complex64)
        w = WeightSet(np.zeros((2, 6, 1), np.complex64), (0, 1), 0)
        with pytest.raises(ConfigurationError):
            beamform(data, w)

    def test_non_3d_rejected(self):
        w = WeightSet(np.zeros((2, 4, 1), np.complex64), (0, 1), 0)
        with pytest.raises(ConfigurationError):
            beamform(np.zeros((4, 8), np.complex64), w)


class TestReplica:
    def test_unit_energy(self):
        for L in (1, 8, 32, 100):
            c = lfm_replica(L)
            assert np.sum(np.abs(c) ** 2) == pytest.approx(1.0, rel=1e-5)

    def test_invalid_length(self):
        with pytest.raises(ConfigurationError):
            lfm_replica(0)

    def test_segment_length_pow2_and_big_enough(self):
        for L in (1, 3, 8, 32, 100):
            seg = segment_length(L)
            assert seg >= 4 * L
            assert seg & (seg - 1) == 0


class TestPulseCompress:
    def test_point_target_focuses(self):
        Lp = 16
        x = np.zeros((1, 256), np.complex64)
        x[0, 50 : 50 + Lp] = 3.0 * lfm_replica(Lp)
        y = pulse_compress(x, Lp)
        assert np.argmax(np.abs(y[0])) == 50
        assert abs(y[0, 50]) == pytest.approx(3.0, rel=1e-4)

    def test_gain_over_noise(self):
        rng = np.random.default_rng(0)
        Lp = 32
        n = (rng.standard_normal((1, 4096)) + 1j * rng.standard_normal((1, 4096))) / np.sqrt(2)
        y = pulse_compress(n.astype(np.complex64), Lp)
        # Unit-energy replica: noise power is preserved.
        assert np.mean(np.abs(y) ** 2) == pytest.approx(1.0, rel=0.1)

    def test_target_near_end_no_wraparound(self):
        Lp = 8
        x = np.zeros((1, 64), np.complex64)
        x[0, 60:64] = lfm_replica(Lp)[:4]
        y = pulse_compress(x, Lp)
        # Peak (partial correlation) at 60; nothing aliases to the front.
        assert np.abs(y[0, :8]).max() < 0.2

    def test_pulse_longer_than_range_rejected(self):
        with pytest.raises(ConfigurationError):
            pulse_compress(np.zeros((1, 8), np.complex64), 16)
        with pytest.raises(ConfigurationError):
            pulse_compress_direct(np.zeros((1, 8), np.complex64), 16)

    @given(
        st.integers(1, 48),
        st.integers(0, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_overlap_save_equals_direct(self, pulse_len, seed):
        rng = np.random.default_rng(seed)
        n_ranges = pulse_len + rng.integers(1, 200)
        x = (
            rng.standard_normal((2, n_ranges)) + 1j * rng.standard_normal((2, n_ranges))
        ).astype(np.complex64)
        a = pulse_compress(x, pulse_len)
        b = pulse_compress_direct(x, pulse_len)
        assert np.allclose(a, b, atol=1e-4)

    def test_multidim_batch(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((3, 4, 100)).astype(np.complex64)
        y = pulse_compress(x, 8)
        assert y.shape == x.shape
        assert np.allclose(y[1, 2], pulse_compress(x[1, 2][None], 8)[0], atol=1e-5)


class TestCFARThreshold:
    def test_exact_formula(self):
        assert cfar_threshold_factor(10, 0.01) == pytest.approx(10 * (0.01 ** (-0.1) - 1))

    def test_monotone_in_pfa(self):
        assert cfar_threshold_factor(16, 1e-8) > cfar_threshold_factor(16, 1e-4)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            cfar_threshold_factor(0, 0.1)
        with pytest.raises(ConfigurationError):
            cfar_threshold_factor(4, 1.5)


class TestCACFAR:
    def _noise(self, shape, seed=0):
        rng = np.random.default_rng(seed)
        return (
            (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)) / np.sqrt(2)
        ).astype(np.complex64)

    def test_detects_strong_cell(self):
        x = self._noise((1, 1, 256))
        x[0, 0, 100] = 30.0
        dets = ca_cfar(x, [7], window=16, guard=2, pfa=1e-6)
        assert any(d.range_gate == 100 and d.doppler_bin == 7 for d in dets)

    def test_reports_sorted(self):
        x = self._noise((2, 2, 256))
        x[1, 0, 50] = 30.0
        x[0, 1, 60] = 30.0
        dets = ca_cfar(x, [3, 9], window=16, guard=2, pfa=1e-6)
        assert dets == sorted(dets)

    def test_false_alarm_rate_calibrated(self):
        # Large homogeneous noise field: empirical Pfa ~ design Pfa.
        x = self._noise((8, 8, 2048), seed=42)
        pfa = 1e-3
        dets = ca_cfar(x, list(range(8)), window=32, guard=2, pfa=pfa)
        n_cells = 8 * 8 * 2048
        observed = len(dets) / n_cells
        assert observed == pytest.approx(pfa, rel=0.5)

    def test_target_masks_do_not_alarm_neighbours_excessively(self):
        x = self._noise((1, 1, 512), seed=3)
        x[0, 0, 200] = 100.0
        dets = ca_cfar(x, [0], window=16, guard=4, pfa=1e-6)
        gates = {d.range_gate for d in dets}
        assert 200 in gates
        assert all(abs(g - 200) <= 1 for g in gates)

    def test_edge_cells_use_one_sided_window(self):
        x = self._noise((1, 1, 128), seed=5)
        x[0, 0, 0] = 40.0
        x[0, 0, 127] = 40.0
        dets = ca_cfar(x, [0], window=8, guard=2, pfa=1e-6)
        gates = {d.range_gate for d in dets}
        assert {0, 127} <= gates

    def test_snr_estimate_reasonable(self):
        x = self._noise((1, 1, 256), seed=6)
        x[0, 0, 64] = 31.6  # ~30 dB over unit noise
        dets = ca_cfar(x, [0], window=16, guard=2, pfa=1e-6)
        d = next(d for d in dets if d.range_gate == 64)
        assert d.snr_db == pytest.approx(30.0, abs=2.0)

    def test_label_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            ca_cfar(np.zeros((2, 1, 64), np.complex64), [0], 8, 1, 1e-3)

    def test_too_small_range_extent(self):
        with pytest.raises(ConfigurationError):
            ca_cfar(np.zeros((1, 1, 10), np.complex64), [0], 8, 2, 1e-3)

    def test_detection_ordering_dataclass(self):
        a = Detection(0, 0, 5, 10.0)
        b = Detection(0, 0, 6, 9.0)
        assert a < b
