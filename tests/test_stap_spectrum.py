"""Tests for angle-Doppler spectrum estimation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stap.scenario import Jammer, Scenario, Target, make_cube
from repro.stap.spectrum import fourier_spectrum, mvdr_spectrum, space_time_snapshots


@pytest.fixture
def quiet_cube(tiny_params):
    sc = Scenario(targets=(), jammers=(), cnr_db=float("-inf"), seed=2)
    return make_cube(tiny_params, sc, 0)


class TestSnapshots:
    def test_shape(self, quiet_cube, tiny_params):
        snaps = space_time_snapshots(quiet_cube, n_pulses_sub=4)
        J, N, R = tiny_params.cube_shape
        assert snaps.shape == (J * 4, (N - 4 + 1) * R)

    def test_invalid_sub_length(self, quiet_cube):
        with pytest.raises(ConfigurationError):
            space_time_snapshots(quiet_cube, n_pulses_sub=0)
        with pytest.raises(ConfigurationError):
            space_time_snapshots(quiet_cube, n_pulses_sub=1000)

    def test_content_is_shifted_views(self, quiet_cube):
        snaps = space_time_snapshots(quiet_cube, n_pulses_sub=2)
        J, N, R = quiet_cube.shape
        # snapshot (offset o=0, range r=0): pulses 0..1 of gate 0.
        first = snaps[:, 0].reshape(J, 2)
        assert np.allclose(first, quiet_cube.data[:, 0:2, 0])


class TestSpectra:
    @pytest.mark.parametrize("fn", [fourier_spectrum, mvdr_spectrum])
    def test_shape_and_positivity(self, fn, quiet_cube):
        power, sa, dp = fn(quiet_cube, n_angles=9, n_dopplers=11)
        assert power.shape == (9, 11)
        assert np.all(power > 0)
        assert sa[0] == -1.0 and dp[-1] == 0.5

    @pytest.mark.parametrize("fn", [fourier_spectrum, mvdr_spectrum])
    def test_target_appears_at_its_cell(self, fn, tiny_params):
        sc = Scenario(
            targets=(Target(range_gate=20, doppler=0.25, angle=np.arcsin(0.5),
                            snr_db=20.0),),
            jammers=(),
            cnr_db=float("-inf"),
            seed=4,
        )
        cube = make_cube(tiny_params, sc, 0)
        power, sa, dp = fn(cube, n_angles=17, n_dopplers=17)
        i, j = np.unravel_index(np.argmax(power), power.shape)
        assert sa[i] == pytest.approx(0.5, abs=0.15)
        assert dp[j] == pytest.approx(0.25, abs=0.1)

    def test_jammer_is_a_constant_angle_line(self, tiny_params):
        sc = Scenario(
            targets=(), jammers=(Jammer(angle=np.arcsin(0.5), jnr_db=30.0),),
            cnr_db=float("-inf"), seed=5,
        )
        cube = make_cube(tiny_params, sc, 0)
        power, sa, dp = mvdr_spectrum(cube, n_angles=17, n_dopplers=17)
        jam_row = int(np.argmin(np.abs(sa - 0.5)))
        away_row = int(np.argmin(np.abs(sa + 0.5)))
        # Strong at the jammer angle across ALL Dopplers.
        assert power[jam_row].min() > 10 * power[away_row].max()

    def test_clutter_ridge_is_diagonal(self, tiny_params):
        sc = Scenario(targets=(), jammers=(), cnr_db=35.0, seed=6)
        cube = make_cube(tiny_params, sc, 0)
        power, sa, dp = mvdr_spectrum(cube, n_angles=21, n_dopplers=21)
        # For each angle row, the peak Doppler should track 0.5*sin(angle).
        peaks = dp[np.argmax(power, axis=1)]
        expect = 0.5 * sa
        inner = slice(3, 18)  # away from scan edges
        assert np.mean(np.abs(peaks[inner] - expect[inner])) < 0.1

    def test_mvdr_sharper_than_fourier(self, tiny_params):
        """Capon's resolution advantage: the jammer line falls off
        faster away from its true angle than in the Bartlett scan."""
        sc = Scenario(
            targets=(), jammers=(Jammer(angle=np.arcsin(0.5), jnr_db=30.0),),
            cnr_db=float("-inf"), seed=7,
        )
        cube = make_cube(tiny_params, sc, 0)
        pf, sa, _ = fourier_spectrum(cube, n_angles=33, n_dopplers=9)
        pm, _, _ = mvdr_spectrum(cube, n_angles=33, n_dopplers=9)
        jam = int(np.argmin(np.abs(sa - 0.5)))
        off = jam - 4  # a few scan rows away from the jammer angle
        falloff_f = pf[jam].mean() / pf[off].mean()
        falloff_m = pm[jam].mean() / pm[off].mean()
        assert falloff_m > 3 * falloff_f
