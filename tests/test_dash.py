"""Tests for the live-observability stack: scheduler event listeners,
the EventFeed ring buffer, the TCP ``events``/``stats`` ops, and the
stdlib-only DashboardServer (JSON API, SSE, /report)."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.analysis.dash import DashboardServer, LocalBackend, RemoteBackend
from repro.bench.engine import ExperimentSpec, run_spec
from repro.bench.store import ResultStore
from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig
from repro.core.pipeline import NodeAssignment
from repro.errors import ServiceError
from repro.service import ExperimentScheduler, EventFeed, TaskSpec
from repro.service.server import ExperimentServer, request, submit_batch
from repro.service.testing import SLEEP_RUNNER
from repro.stap.params import STAPParams

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

DEADLINE = 60


def sleep_cell(key, tmp_path, value=None):
    return TaskSpec(
        key=key,
        payload={"id": key, "value": value if value is not None else key,
                 "duration": 0.0, "dir": str(tmp_path)},
        runner=SLEEP_RUNNER,
    )


def drain(handle):
    return list(handle.results())


# -- EventFeed ---------------------------------------------------------------
class TestEventFeed:
    def test_since_and_cursor(self):
        feed = EventFeed()
        for i in range(3):
            feed.record({"event": "task", "i": i})
        events, cursor = feed.since(0)
        assert [e["i"] for e in events] == [0, 1, 2]
        assert [e["seq"] for e in events] == [1, 2, 3]
        assert cursor == 3
        assert all("time" in e for e in events)
        # nothing new past the cursor
        events, cursor = feed.since(cursor)
        assert events == [] and cursor == 3

    def test_ring_eviction_skips_gap(self):
        feed = EventFeed(maxlen=4)
        for i in range(10):
            feed.record({"i": i})
        events, cursor = feed.since(0)
        # only the newest 4 survive; the cursor converges past the gap
        assert [e["i"] for e in events] == [6, 7, 8, 9]
        assert cursor == 10

    def test_limit(self):
        feed = EventFeed()
        for i in range(5):
            feed.record({"i": i})
        events, cursor = feed.since(0, limit=2)
        assert [e["i"] for e in events] == [0, 1]
        assert cursor == 2  # resume from the truncation point

    def test_wait_times_out_empty(self):
        feed = EventFeed()
        events, cursor = feed.wait(0, timeout=0.05)
        assert events == [] and cursor == 0

    def test_wait_wakes_on_record(self):
        feed = EventFeed()
        got = {}

        def consumer():
            got["events"], got["cursor"] = feed.wait(0, timeout=5.0)

        t = threading.Thread(target=consumer)
        t.start()
        feed.record({"hello": 1})
        t.join(timeout=DEADLINE)
        assert not t.is_alive()
        assert got["events"][0]["hello"] == 1


# -- scheduler listeners -----------------------------------------------------
class TestSchedulerEvents:
    def test_lifecycle_event_stream(self, tmp_path):
        events = []
        with ExperimentScheduler(workers=0, store=None) as s:
            s.add_listener(events.append)
            cells = [sleep_cell(f"c{i}", tmp_path) for i in range(3)]
            h = s.submit_stages([("sleep", cells)], client="a")
            drain(h)
        kinds = [e["event"] for e in events]
        assert kinds.count("result") == 3
        # job events bracket the run: a RUNNING emission and a DONE one
        job_states = [e["state"] for e in events if e["event"] == "job"]
        assert job_states[0] == "running"
        assert job_states[-1] == "done"
        stage_states = [e["state"] for e in events if e["event"] == "stage"]
        assert "done" in stage_states
        task_states = {e["state"] for e in events if e["event"] == "task"}
        assert {"running", "done"} <= task_states
        # results count rides on the job event for progress rendering
        final_job = [e for e in events if e["event"] == "job"][-1]
        assert final_job["results"] == 3

    def test_listener_exceptions_are_swallowed(self, tmp_path):
        def bad_listener(event):
            raise RuntimeError("listener bug")

        with ExperimentScheduler(workers=0, store=None) as s:
            s.add_listener(bad_listener)
            h = s.submit_stages(
                [("sleep", [sleep_cell("k", tmp_path)])], client="a"
            )
            out = drain(h)
        assert len(out) == 1  # the job still completes

    def test_synthetic_payload_result_event(self, tmp_path):
        # Sleep-runner payloads have no "measurement"; the result event
        # must still be emitted with null throughput, not crash.
        events = []
        with ExperimentScheduler(workers=0, store=None) as s:
            s.add_listener(events.append)
            h = s.submit_stages(
                [("sleep", [sleep_cell("k", tmp_path)])], client="a"
            )
            drain(h)
        (result_event,) = [e for e in events if e["event"] == "result"]
        assert result_event["throughput"] is None
        assert result_event["result_source"] == "simulated"


# -- TCP ops -----------------------------------------------------------------
def _small_spec(sf=8):
    params = STAPParams(
        n_channels=8, n_pulses=32, n_ranges=256, n_beams=6, n_hard_bins=8,
        n_training=64, pulse_len=16, cfar_window=12, cfar_guard=3, pfa=1e-6,
    )
    return ExperimentSpec(
        assignment=NodeAssignment.balanced(params, 14),
        pipeline="embedded",
        fs=FSConfig("pfs", stripe_factor=sf),
        params=params,
        cfg=ExecutionConfig(n_cpis=2, warmup=1),
    )


@pytest.fixture(scope="module")
def live_service():
    """A scheduler+feed+server that has completed one 2-cell job."""
    scheduler = ExperimentScheduler(workers=0, store=None)
    feed = EventFeed().attach(scheduler)
    specs = [_small_spec(4).to_dict(), _small_spec(8).to_dict()]
    with ExperimentServer(scheduler, port=0, feed=feed) as server:
        events = list(
            submit_batch(server.host, server.port, specs, follow=True)
        )
        assert events[-1]["event"] == "done"
        yield server
    scheduler.shutdown()


class TestServerOps:
    def test_events_op(self, live_service):
        srv = live_service
        resp = request(srv.host, srv.port, {"op": "events", "after": 0})
        kinds = {e["event"] for e in resp["events"]}
        assert {"job", "stage", "task", "result"} <= kinds
        assert resp["next"] >= len(resp["events"])
        # cursor resumes cleanly
        again = request(
            srv.host, srv.port, {"op": "events", "after": resp["next"]}
        )
        assert again["events"] == []

    def test_stats_op(self, live_service):
        srv = live_service
        resp = request(srv.host, srv.port, {"op": "stats"})
        assert resp["stats"]["tasks_in_flight"] == 0
        assert resp["stats"]["service_jobs_submitted_total"] >= 1
        assert isinstance(resp["workers"], list)

    def test_events_op_without_feed(self):
        with ExperimentScheduler(workers=0, store=None) as s:
            with ExperimentServer(s, port=0) as srv:
                with pytest.raises(ServiceError, match="no event feed"):
                    request(srv.host, srv.port, {"op": "events"})

    def test_bad_cursor_rejected(self, live_service):
        srv = live_service
        with pytest.raises(ServiceError, match="bad cursor"):
            request(srv.host, srv.port,
                    {"op": "events", "after": "not-a-number"})


# -- dashboard HTTP endpoints ------------------------------------------------
def _get_json(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _get_text(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.read().decode("utf-8")


@pytest.fixture(scope="module")
def dash_stack(tmp_path_factory):
    """Scheduler + completed job + store + DashboardServer (local)."""
    tmp = tmp_path_factory.mktemp("dash")
    store = ResultStore(tmp / "cache")
    spec = _small_spec(4)
    metered_spec = ExperimentSpec(
        assignment=spec.assignment, pipeline="embedded",
        fs=spec.fs, params=spec.params,
        cfg=ExecutionConfig(n_cpis=2, warmup=1, metrics_interval=0.25),
    )
    store.put(metered_spec, run_spec(metered_spec))

    scheduler = ExperimentScheduler(workers=0, store=store)
    feed = EventFeed().attach(scheduler)
    handle = scheduler.submit([_small_spec(8)], client="dash-test")
    drain(handle)
    dash = DashboardServer(
        LocalBackend(scheduler, feed), port=0,
        store=store, results_dir=str(RESULTS_DIR),
    ).start()
    yield dash, metered_spec
    dash.stop()
    scheduler.shutdown()


class TestDashboard:
    def test_index(self, dash_stack):
        dash, _ = dash_stack
        page = _get_text(dash.address + "/")
        assert "repro fleet dashboard" in page
        assert "/report" in page

    def test_jobs_endpoint(self, dash_stack):
        dash, _ = dash_stack
        jobs = _get_json(dash.address + "/api/jobs")["jobs"]
        assert len(jobs) == 1
        assert jobs[0]["state"] == "done"
        assert jobs[0]["client"] == "dash-test"

    def test_events_endpoint(self, dash_stack):
        dash, _ = dash_stack
        payload = _get_json(dash.address + "/api/events?after=0")
        assert payload["events"]
        assert payload["next"] == payload["events"][-1]["seq"]

    def test_stats_endpoint(self, dash_stack):
        dash, _ = dash_stack
        stats = _get_json(dash.address + "/api/stats")["stats"]
        assert stats["tasks_in_flight"] == 0
        assert stats["service_jobs_submitted_total"] >= 1

    def test_runs_and_run_detail(self, dash_stack):
        dash, metered_spec = dash_stack
        runs = _get_json(dash.address + "/api/runs")["runs"]
        hashes = {r["hash"] for r in runs}
        assert metered_spec.spec_hash() in hashes
        detail = _get_json(
            dash.address + "/api/run/" + metered_spec.spec_hash()[:12]
        )
        assert detail["hash"] == metered_spec.spec_hash()
        assert detail["throughput"] > 0
        assert detail["profile"]["bottleneck"] in ("disk", "compute")
        assert detail["series"]  # sparkline-ready gauge series
        some_series = next(iter(detail["series"].values()))
        assert some_series["spark"]

    def test_report_endpoint(self, dash_stack):
        dash, _ = dash_stack
        page = _get_text(dash.address + "/report")
        assert "Strategy win/loss" in page
        assert "server-directed" in page

    def test_sse_stream(self, dash_stack):
        dash, _ = dash_stack
        req = urllib.request.urlopen(dash.address + "/events?after=0",
                                     timeout=10)
        assert req.headers["Content-Type"].startswith("text/event-stream")
        line = req.readline().decode("utf-8")
        assert line.startswith("id: ")
        data = req.readline().decode("utf-8")
        assert data.startswith("data: ")
        event = json.loads(data[len("data: "):])
        assert "event" in event and "seq" in event
        req.close()

    def test_unknown_path_404(self, dash_stack):
        dash, _ = dash_stack
        with pytest.raises(urllib.error.HTTPError) as err:
            _get_json(dash.address + "/api/nope")
        assert err.value.code == 404


class TestRemoteBackend:
    def test_dashboard_over_tcp(self, live_service):
        srv = live_service
        backend = RemoteBackend(srv.host, srv.port)
        with DashboardServer(backend, port=0) as dash:
            jobs = _get_json(dash.address + "/api/jobs")["jobs"]
            assert jobs and jobs[0]["state"] == "done"
            payload = _get_json(dash.address + "/api/events?after=0")
            assert payload["events"]
            stats = _get_json(dash.address + "/api/stats")["stats"]
            assert "tasks_in_flight" in stats
