"""Tests for the analytic cost models."""

import pytest

from repro.stap.costs import STAPCosts
from repro.stap.params import STAPParams


@pytest.fixture
def costs():
    return STAPCosts(STAPParams())


class TestFlops:
    def test_all_tasks_positive(self, costs):
        for i in range(7):
            assert costs.task_flops(i) > 0

    def test_hard_weights_dearer_than_easy_per_bin(self, costs):
        p = costs.params
        easy_per_bin = costs.easy_weight_flops() / p.n_easy_bins
        hard_per_bin = costs.hard_weight_flops() / p.n_hard_bins
        # 2J DoF: covariance is 4x, Cholesky 8x per bin.
        assert hard_per_bin > 3.5 * easy_per_bin

    def test_doppler_scales_linearly_with_ranges(self):
        a = STAPCosts(STAPParams(n_ranges=512, n_training=96))
        b = STAPCosts(STAPParams(n_ranges=1024, n_training=96))
        assert b.doppler_flops() == pytest.approx(2 * a.doppler_flops())

    def test_beamform_scales_with_beams(self):
        a = STAPCosts(STAPParams(n_beams=4))
        b = STAPCosts(STAPParams(n_beams=8))
        assert b.easy_beamform_flops() == pytest.approx(2 * a.easy_beamform_flops())

    def test_pc_cost_matches_overlap_save_structure(self, costs):
        from repro.stap.pulse import segment_length

        p = costs.params
        L = segment_length(p.pulse_len)
        per_profile = costs.pulse_compression_flops() / (p.n_doppler_bins * p.n_beams)
        # At least one segment FFT pair per profile.
        assert per_profile >= 2 * 5 * L * (L.bit_length() - 1)

    def test_cfar_is_cheapest(self, costs):
        others = [costs.task_flops(i) for i in range(6)]
        assert costs.cfar_flops() < min(others)


class TestBytes:
    def test_cube_bytes(self, costs):
        assert costs.cube_bytes() == 16 * 1024 * 1024

    def test_doppler_output_partition(self, costs):
        p = costs.params
        assert costs.doppler_easy_bytes() == p.n_easy_bins * p.n_channels * p.n_ranges * 8
        assert costs.doppler_hard_bytes() == p.n_hard_bins * 2 * p.n_channels * p.n_ranges * 8

    def test_beams_bytes_sum(self, costs):
        assert costs.beams_all_bytes() == costs.beams_easy_bytes() + costs.beams_hard_bytes()

    def test_weights_smaller_than_data(self, costs):
        assert costs.weights_easy_bytes() < costs.doppler_easy_bytes()
        assert costs.weights_hard_bytes() < costs.doppler_hard_bytes()

    def test_detections_tiny(self, costs):
        assert costs.detections_bytes() < 4096
