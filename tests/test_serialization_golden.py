"""Golden serialization-key conventions: snake_case out, camel tolerated in."""

from __future__ import annotations

import json
import re

import pytest

from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineExecutor, PipelineResult
from repro.core.metrics import PipelineMeasurement
from repro.core.pipeline import NodeAssignment, build_embedded_pipeline
from repro.core.serialize import camel, compat_get
from repro.machine.presets import paragon

_CAMEL = re.compile(r"[a-z][A-Z]")


@pytest.fixture(scope="module")
def result(request):
    from repro.stap.params import STAPParams

    params = STAPParams(
        n_channels=8, n_pulses=32, n_ranges=256, n_beams=6, n_hard_bins=8,
        n_training=64, pulse_len=16, cfar_window=12, cfar_guard=3, pfa=1e-6,
    )
    return PipelineExecutor(
        build_embedded_pipeline(NodeAssignment.balanced(params, 14)),
        params, paragon(), FSConfig("pfs", stripe_factor=8),
        ExecutionConfig(n_cpis=3, warmup=1, metrics_interval=0.5),
    ).run()


def _all_keys(obj, out=None):
    if out is None:
        out = set()
    if isinstance(obj, dict):
        for k, v in obj.items():
            if isinstance(k, str):
                out.add(k)
            _all_keys(v, out)
    elif isinstance(obj, list):
        for v in obj:
            _all_keys(v, out)
    return out


class TestGoldenKeys:
    def test_result_dict_is_pure_snake_case(self, result):
        d = result.to_dict()
        # The metrics artifact holds qualified instrument names
        # (name{label="v"}), not struct keys — exempt from the rule.
        d.pop("metrics", None)
        offenders = {
            k for k in _all_keys(d)
            if _CAMEL.search(k) and "->" not in k
        }
        assert offenders == set()

    def test_round_trip_preserves_every_key(self, result):
        d = json.loads(json.dumps(result.to_dict()))
        clone = PipelineResult.from_dict(d)
        assert clone.to_dict() == result.to_dict()


class TestCamelCompatReads:
    def test_helpers(self):
        assert camel("task_stats") == "taskStats"
        assert camel("fs_label") == "fsLabel"
        assert camel("seed") == "seed"
        assert compat_get({"taskStats": 1}, "task_stats") == 1
        assert compat_get({"task_stats": 1, "taskStats": 2}, "task_stats") == 1
        assert compat_get({}, "task_stats", None) is None
        with pytest.raises(KeyError, match="task_stats"):
            compat_get({}, "task_stats")

    def test_measurement_reads_camel(self, result):
        d = result.measurement.to_dict()
        legacy = {
            "taskStats": d["task_stats"],
            "throughput": d["throughput"],
            "latency": d["latency"],
            "modelThroughput": d["model_throughput"],
            "modelLatency": d["model_latency"],
            "steadyCpis": d["steady_cpis"],
            "latencies": d["latencies"],
        }
        clone = PipelineMeasurement.from_dict(legacy)
        assert clone.to_dict() == d  # re-emitted snake_case

    def test_result_reads_camel_top_level(self, result):
        d = json.loads(json.dumps(result.to_dict()))
        legacy = dict(d)
        for key in ("fs_label", "machine_name", "elapsed_sim_time",
                    "disk_stats", "rank_traffic", "rank_task"):
            legacy[camel(key)] = legacy.pop(key)
        clone = PipelineResult.from_dict(legacy)
        assert clone.to_dict() == d

    def test_writes_never_emit_camel(self, result):
        """The compat path is read-only: a camelCase round trip comes
        back out canonically snake_case."""
        legacy = json.loads(json.dumps(result.to_dict()))
        legacy["fsLabel"] = legacy.pop("fs_label")
        emitted = PipelineResult.from_dict(legacy).to_dict()
        assert "fs_label" in emitted and "fsLabel" not in emitted
