"""The PIPELINES registry view: legacy keys warn, registry keys don't."""

from __future__ import annotations

import warnings

import pytest

from repro.bench.engine import LEGACY_STRATEGY, PIPELINES, ExperimentSpec
from repro.core.pipeline import NodeAssignment
from repro.strategies import strategy_names


class TestLegacyKeyDeprecation:
    @pytest.mark.parametrize("key", sorted(LEGACY_STRATEGY))
    def test_legacy_subscript_warns_and_works(self, key, small_params):
        with pytest.warns(DeprecationWarning, match="strategy_names"):
            builder = PIPELINES[key]
        spec = builder(NodeAssignment.balanced(small_params, 14))
        assert spec.tasks  # a real pipeline came back

    def test_registry_subscript_does_not_warn(self, recwarn):
        for name in strategy_names():
            PIPELINES[name]
        assert not [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]

    def test_resolve_never_warns(self, recwarn):
        for key in (*LEGACY_STRATEGY, *strategy_names()):
            assert callable(PIPELINES.resolve(key))
        assert not [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]

    def test_membership_and_iteration_do_not_warn(self, recwarn):
        assert "embedded" in PIPELINES
        assert "embedded-io" in PIPELINES
        assert "nope" not in PIPELINES
        assert set(LEGACY_STRATEGY) <= set(PIPELINES)
        assert len(PIPELINES) >= len(strategy_names())
        assert not [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]

    def test_view_is_live_over_the_registry(self):
        # Every registered strategy is addressable without snapshotting.
        for name in strategy_names():
            assert name in PIPELINES

    def test_legacy_specs_stay_warning_free(self, small_params):
        """Serialized specs keep using legacy keys without deprecation
        noise — their hashes (and cache entries) must not change."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            spec = ExperimentSpec(
                assignment=NodeAssignment.balanced(small_params, 14),
                pipeline="embedded",
                params=small_params,
            )
            assert spec.build_pipeline().tasks
            assert spec.strategy == "embedded-io"
