"""CLI observability paths: run --metrics, metrics show, error handling."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import validate_metrics_dict


def _run_cell(tmp_path, *extra):
    argv = [
        "run", "--case", "1", "--cpis", "2", "--warmup", "0",
        "--stripe-factor", "8",
        "--cache-dir", str(tmp_path / "cache"),
        "--metrics-dir", str(tmp_path / "metrics"),
        *extra,
    ]
    return main(argv)


class TestRunWithMetrics:
    def test_writes_all_three_artifacts(self, tmp_path, capsys):
        assert _run_cell(tmp_path, "--metrics") == 0
        out = capsys.readouterr().out
        assert "metrics:" in out  # the live summary printed
        mdir = tmp_path / "metrics"
        stems = {p.name.split(".", 1)[1] for p in mdir.iterdir()}
        assert stems == {"metrics.json", "prom", "trace.json"}
        artifact = json.loads(
            next(mdir.glob("*.metrics.json")).read_text()
        )
        assert validate_metrics_dict(artifact) == []

    def test_interval_implies_metrics(self, tmp_path):
        assert _run_cell(tmp_path, "--metrics-interval", "0.5") == 0
        artifact = json.loads(
            next((tmp_path / "metrics").glob("*.metrics.json")).read_text()
        )
        assert artifact["interval"] == 0.5

    def test_metrics_with_jobs_rejected(self, tmp_path, capsys):
        assert _run_cell(tmp_path, "--metrics", "--jobs", "2") == 2
        assert "in-process" in capsys.readouterr().err

    def test_no_metrics_no_artifacts(self, tmp_path):
        assert _run_cell(tmp_path) == 0
        assert not (tmp_path / "metrics").exists()


class TestMetricsShow:
    @pytest.fixture
    def cached_cell(self, tmp_path):
        assert _run_cell(tmp_path, "--metrics") == 0
        return tmp_path

    def test_show_from_cache_hash(self, cached_cell, capsys):
        mfile = next((cached_cell / "metrics").glob("*.metrics.json"))
        prefix = mfile.name.split(".", 1)[0]
        capsys.readouterr()
        rc = main([
            "metrics", "show", prefix,
            "--cache-dir", str(cached_cell / "cache"),
        ])
        assert rc == 0
        assert "busiest series" in capsys.readouterr().out

    def test_show_from_artifact_file(self, cached_cell, capsys):
        mfile = next((cached_cell / "metrics").glob("*.metrics.json"))
        assert main(["metrics", "show", str(mfile)]) == 0
        assert "samples @" in capsys.readouterr().out

    def test_show_unknown_hash_fails(self, tmp_path, capsys):
        rc = main([
            "metrics", "show", "feedbeef",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert rc == 2
        assert "no cached result" in capsys.readouterr().err

    def test_show_result_without_metrics_fails_actionably(
        self, tmp_path, capsys
    ):
        assert _run_cell(tmp_path) == 0  # plain run, no metrics
        from repro.bench.store import ResultStore

        store = ResultStore(tmp_path / "cache")
        (h,) = store.hashes()
        capsys.readouterr()
        rc = main(["metrics", "show", h, "--cache-dir", str(tmp_path / "cache")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "no metrics artifact" in err
        assert "--metrics" in err  # tells the user how to fix it
