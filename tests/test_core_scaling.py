"""Tests for the scalability analysis module and utilization metrics."""

import pytest

from repro.errors import ConfigurationError
from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineExecutor
from repro.core.pipeline import NodeAssignment, build_embedded_pipeline
from repro.core.scaling import ScalingPoint, ScalingStudy, run_scaling_study
from repro.machine.presets import paragon


def study_from(values):
    """Build a study from (nodes, throughput) pairs."""
    return ScalingStudy(
        [ScalingPoint(n, t, latency=1.0 / t, bottleneck="doppler") for n, t in values]
    )


class TestScalingStudy:
    def test_needs_two_points(self):
        with pytest.raises(ConfigurationError):
            study_from([(10, 1.0)])

    def test_points_must_be_sorted(self):
        with pytest.raises(ConfigurationError):
            study_from([(20, 2.0), (10, 1.0)])

    def test_speedups_relative_to_base(self):
        s = study_from([(10, 1.0), (20, 1.8), (40, 3.0)])
        assert s.speedups() == {10: 1.0, 20: 1.8, 40: 3.0}

    def test_efficiencies(self):
        s = study_from([(10, 1.0), (20, 1.8), (40, 3.0)])
        eff = s.efficiencies()
        assert eff[10] == pytest.approx(1.0)
        assert eff[20] == pytest.approx(0.9)
        assert eff[40] == pytest.approx(0.75)

    def test_perfect_scaling_has_zero_serial_fraction(self):
        s = study_from([(10, 1.0), (40, 4.0)])
        assert s.serial_fraction(40) == pytest.approx(0.0, abs=1e-12)

    def test_amdahl_consistency(self):
        """A curve generated from Amdahl's law recovers its f."""
        f = 0.1
        base = 10

        def amdahl(p_rel):
            return 1.0 / (f + (1 - f) / p_rel)

        s = study_from([(base, 1.0), (20, amdahl(2)), (40, amdahl(4)), (80, amdahl(8))])
        for n in (20, 40, 80):
            assert s.serial_fraction(n) == pytest.approx(f, rel=1e-6)

    def test_serial_fraction_needs_larger_p(self):
        s = study_from([(10, 1.0), (20, 1.9)])
        with pytest.raises(ConfigurationError):
            s.serial_fraction(10)

    def test_saturation_detection(self):
        s = study_from([(10, 1.0), (20, 1.9), (40, 1.95)])
        assert s.saturation_nodes() == 40

    def test_no_saturation(self):
        s = study_from([(10, 1.0), (20, 1.9), (40, 3.7)])
        assert s.saturation_nodes() is None


class TestRunScalingStudy:
    def test_small_sweep(self, small_params):
        study = run_scaling_study(
            node_counts=(10, 20),
            stripe_factor=8,
            params=small_params,
            cfg=ExecutionConfig(n_cpis=4, warmup=1),
        )
        assert len(study.points) == 2
        assert study.points[1].throughput > study.points[0].throughput


class TestUtilization:
    def test_bottleneck_near_full_utilization(self, small_params):
        a = NodeAssignment.balanced(small_params, 20)
        res = PipelineExecutor(
            build_embedded_pipeline(a), small_params, paragon(),
            FSConfig("pfs", 8), ExecutionConfig(n_cpis=8, warmup=2),
        ).run()
        util = res.measurement.utilization()
        m = res.measurement
        assert util[m.bottleneck_task] == pytest.approx(1.0, abs=0.15)
        assert all(0 < u < 1.3 for u in util.values())

    def test_disk_stats_recorded(self, small_params):
        a = NodeAssignment.balanced(small_params, 20)
        res = PipelineExecutor(
            build_embedded_pipeline(a), small_params, paragon(),
            FSConfig("pfs", 8), ExecutionConfig(n_cpis=4, warmup=1),
        ).run()
        assert res.disk_stats is not None
        assert len(res.disk_stats["busy_time_per_server"]) == 8
        assert res.disk_stats["bytes_served"] > 0
        assert 0 < res.disk_utilization() < 1.0

    def test_smaller_stripe_factor_busier_disks(self, small_params):
        a = NodeAssignment.balanced(small_params, 20)
        utils = {}
        for sf in (2, 16):
            res = PipelineExecutor(
                build_embedded_pipeline(a), small_params, paragon(),
                FSConfig("pfs", sf), ExecutionConfig(n_cpis=4, warmup=1),
            ).run()
            utils[sf] = res.disk_utilization()
        assert utils[2] > utils[16]
