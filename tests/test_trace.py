"""Tests for trace records, the collector, and reporting."""

import pytest

from repro.trace.collector import TraceCollector
from repro.trace.gantt import render_gantt
from repro.trace.record import Phase, PhaseRecord
from repro.trace.report import bar_chart, format_table, grouped_bar_chart


class TestPhaseRecord:
    def test_duration(self):
        r = PhaseRecord("t", 0, 0, Phase.RECV, 1.0, 3.5)
        assert r.duration == 2.5

    def test_backwards_interval_rejected(self):
        with pytest.raises(ValueError):
            PhaseRecord("t", 0, 0, Phase.RECV, 2.0, 1.0)


class TestCollector:
    @pytest.fixture
    def trace(self):
        tc = TraceCollector()
        # Two tasks, two nodes, two CPIs.
        for cpi in (0, 1):
            base = cpi * 10.0
            for node in (0, 1):
                tc.add("a", node, cpi, Phase.RECV, base, base + 1 + node)
                tc.add("a", node, cpi, Phase.COMPUTE, base + 2, base + 4)
                tc.add("a", node, cpi, Phase.SEND, base + 4, base + 4.5)
                tc.add("a", node, cpi, Phase.CREDIT, base + 5, base + 6)
            tc.add("b", 0, cpi, Phase.COMPUTE, base + 5, base + 7)
            tc.add("b", 0, cpi, Phase.DONE, base + 7, base + 7)
        return tc

    def test_tasks_first_seen_order(self, trace):
        assert trace.tasks() == ["a", "b"]

    def test_cpis(self, trace):
        assert trace.cpis() == [0, 1]
        assert trace.cpis("b") == [0, 1]

    def test_negative_cpis_hidden(self):
        tc = TraceCollector()
        tc.add("w", 0, -1, Phase.SEND, 0, 1)
        assert tc.cpis() == []

    def test_phase_time_max_over_nodes(self, trace):
        assert trace.phase_time("a", 0, Phase.RECV) == 2.0  # node 1 is slower

    def test_phase_time_mean(self, trace):
        assert trace.phase_time("a", 0, Phase.RECV, agg="mean") == 1.5

    def test_phase_time_missing_is_zero(self, trace):
        assert trace.phase_time("b", 0, Phase.RECV) == 0.0

    def test_service_time_excludes_credit(self, trace):
        # node1: recv 2 + compute 2 + send 0.5 = 4.5; credit not counted.
        assert trace.service_time("a", 0) == 4.5

    def test_completion_time(self, trace):
        assert trace.completion_time("a", 1) == 16.0
        with pytest.raises(KeyError):
            trace.completion_time("a", 9)

    def test_start_time_excludes_credit(self, trace):
        assert trace.start_time("a", 0) == 0.0
        assert trace.start_time("b", 0) == 5.0

    def test_len(self, trace):
        assert len(trace) == 2 * (2 * 4 + 2)


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["name", "x"], [["alpha", 1.5], ["b", 22.25]])
        lines = out.splitlines()
        assert "name" in lines[0] and "x" in lines[0]
        assert "1.5000" in out and "22.2500" in out

    def test_format_table_title(self):
        out = format_table(["c"], [[1.0]], title="My Table")
        assert out.startswith("My Table")

    def test_bar_chart_scales_to_max(self):
        out = bar_chart({"big": 10.0, "small": 1.0}, width=20)
        lines = out.splitlines()
        big = next(l for l in lines if "big" in l)
        small = next(l for l in lines if "small" in l)
        assert big.count("#") == 20
        assert 1 <= small.count("#") <= 3

    def test_bar_chart_empty(self):
        assert "(no data)" in bar_chart({}, title="t")

    def test_bar_chart_zero_values(self):
        out = bar_chart({"z": 0.0})
        assert "0" in out

    def test_grouped_chart_shares_scale(self):
        out = grouped_bar_chart(
            {"g1": {"a": 10.0}, "g2": {"b": 5.0}}, width=20
        )
        a_line = next(l for l in out.splitlines() if "a |" in l)
        b_line = next(l for l in out.splitlines() if "b |" in l)
        assert a_line.count("#") == 2 * b_line.count("#")

    def test_grouped_chart_empty(self):
        assert "(no data)" in grouped_bar_chart({}, title="x")


class TestGantt:
    def test_empty(self):
        assert "(empty trace)" in render_gantt(TraceCollector())

    def test_renders_rows_per_node(self):
        tc = TraceCollector()
        tc.add("task", 0, 0, Phase.COMPUTE, 0.0, 1.0)
        tc.add("task", 1, 0, Phase.RECV, 0.0, 0.5)
        out = render_gantt(tc, width=40)
        assert out.count("task[") == 2
        assert "C" in out and "r" in out

    def test_time_header(self):
        tc = TraceCollector()
        tc.add("t", 0, 0, Phase.SEND, 0.0, 2.0)
        assert "0 .. 2.0" in render_gantt(tc).splitlines()[0]

    def test_task_filter(self):
        tc = TraceCollector()
        tc.add("a", 0, 0, Phase.COMPUTE, 0.0, 1.0)
        tc.add("b", 0, 0, Phase.COMPUTE, 0.0, 1.0)
        out = render_gantt(tc, tasks=["b"])
        assert "b[" in out and "a[" not in out
