"""The observability layer: instruments, sampler, and zero perturbation."""

from __future__ import annotations

import json

import pytest

from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineExecutor, PipelineResult
from repro.core.pipeline import NodeAssignment, build_embedded_pipeline
from repro.errors import ConfigurationError
from repro.machine.presets import paragon
from repro.obs import (
    METRICS_SCHEMA,
    MetricsRegistry,
    Sampler,
    bottleneck_profile,
    time_weighted_mean,
    validate_metrics_dict,
)
from repro.obs.report import parse_qualified_name, series_by_name
from repro.sim.kernel import Kernel


def _run(small_params, metrics_interval=None, **cfg_kwargs):
    cfg = ExecutionConfig(
        n_cpis=4, warmup=1, metrics_interval=metrics_interval, **cfg_kwargs
    )
    return PipelineExecutor(
        build_embedded_pipeline(NodeAssignment.balanced(small_params, 14)),
        small_params, paragon(), FSConfig("pfs", stripe_factor=8), cfg,
    ).run()


class TestInstruments:
    def test_counter_accumulates_and_rejects_decrease(self):
        reg = MetricsRegistry()
        c = reg.counter("reads_total", task="doppler")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            c.inc(-1)

    def test_qualified_name_sorts_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("x", b="2", a="1")
        assert c.qualified_name == 'x{a="1",b="2"}'
        assert reg.counter("x", a="1", b="2") is c  # get-or-create

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("depth")
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.gauge("depth")

    def test_pull_gauge_reads_callback_and_rejects_set(self):
        reg = MetricsRegistry()
        state = {"v": 7.0}
        g = reg.gauge("queue", fn=lambda: state["v"])
        assert g.read() == 7.0
        state["v"] = 9.0
        assert g.read() == 9.0
        with pytest.raises(ConfigurationError, match="pull-based"):
            g.set(1.0)

    def test_push_gauge(self):
        g = MetricsRegistry().gauge("temp")
        g.set(3.0)
        assert g.read() == 3.0

    def test_histogram_cumulative_shape(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 99.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]      # (<=1, <=2, +inf]
        assert h.count == 3
        assert h.sum == pytest.approx(101.0)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ConfigurationError, match="ascending"):
            MetricsRegistry().histogram("lat", buckets=(2.0, 1.0))

    def test_timeseries_rejects_time_regress(self):
        ts = MetricsRegistry().timeseries("q")
        ts.record(1.0, 5.0)
        ts.record(2.0, 6.0)
        with pytest.raises(ConfigurationError, match="precedes"):
            ts.record(0.5, 7.0)
        assert ts.points() == [(1.0, 5.0), (2.0, 6.0)]
        assert ts.last == 6.0

    def test_artifact_shape_and_validation(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g", fn=lambda: 4.0)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        d = reg.to_dict(interval=0.1, t_end=1.0, samples=10)
        assert d["schema"] == METRICS_SCHEMA
        assert d["counters"] == {"c": 2}
        assert d["gauges"] == {"g": 4.0}
        assert validate_metrics_dict(d) == []
        assert json.loads(json.dumps(d)) == d  # JSON-able

    def test_validation_catches_malformed(self):
        assert validate_metrics_dict([]) != []
        bad = MetricsRegistry().to_dict()
        bad["series"] = {"s": {"t": [1.0, 0.5], "v": [1, 2]}}
        assert any("monotone" in p for p in validate_metrics_dict(bad))


class TestSampler:
    def _toy(self, interval, t_total=1.0, step=0.05):
        """A kernel ticking a counter; gauge tracks it. Returns series."""
        kernel = Kernel()
        reg = MetricsRegistry()
        state = {"v": 0.0}
        reg.gauge("v", fn=lambda: state["v"])

        def ticker():
            while kernel.now < t_total:
                yield kernel.timeout(step)
                state["v"] += 1.0

        kernel.process(ticker(), name="ticker")
        sampler = Sampler(kernel, reg, interval)
        sampler.attach()
        kernel.run()
        sampler.finalize(kernel.now)
        return reg.gauges()[0].series, sampler

    def test_samples_on_interval_boundaries(self):
        series, sampler = self._toy(interval=0.25)
        ts = [t for t, _ in series.points()]
        # Points only at k*0.25 boundaries (plus the forced final point).
        for t in ts[:-1]:
            assert (t / 0.25) == pytest.approx(round(t / 0.25))
        assert sampler.samples >= 4

    def test_sparse_dedupe(self):
        # Interval finer than the state change rate: consecutive equal
        # values are recorded once.
        series, _ = self._toy(interval=0.01, step=0.2)
        vals = [v for _, v in series.points()]
        assert all(a != b for a, b in zip(vals[:-2], vals[1:-1]))

    def test_finalize_forces_last_point_and_detaches(self):
        kernel = Kernel()
        reg = MetricsRegistry()
        reg.gauge("v", fn=lambda: 42.0)
        s = Sampler(kernel, reg, 0.5)
        s.attach()
        assert kernel._monitor is not None
        s.finalize(3.0)
        assert kernel._monitor is None
        assert reg.gauges()[0].series.points()[-1] == (3.0, 42.0)

    def test_double_attach_rejected(self):
        kernel = Kernel()
        s1 = Sampler(kernel, MetricsRegistry(), 0.5)
        s1.attach()
        with pytest.raises(ConfigurationError, match="monitor"):
            Sampler(kernel, MetricsRegistry(), 0.5).attach()


def _strip(d: dict) -> dict:
    d = json.loads(json.dumps(d))
    d.pop("metrics", None)
    d.get("cfg", {}).pop("metrics_interval", None)
    return d


class TestZeroPerturbation:
    def test_identical_results_with_and_without_metrics(self, small_params):
        plain = _run(small_params)
        metered = _run(small_params, metrics_interval=0.25)
        assert _strip(metered.to_dict()) == _strip(plain.to_dict())

    def test_threaded_mode_also_identical(self, small_params):
        plain = _run(small_params, threaded=True)
        metered = _run(small_params, metrics_interval=0.25, threaded=True)
        assert _strip(metered.to_dict()) == _strip(plain.to_dict())

    def test_plain_run_carries_no_metrics(self, small_params):
        res = _run(small_params)
        assert res.metrics is None
        assert "metrics" not in res.to_dict()
        assert "metrics_interval" not in res.to_dict()["cfg"]


class TestExecutorIntegration:
    # class-scoped so the (relatively) expensive run happens once
    @pytest.fixture(scope="class")
    def small_params(self):
        from repro.stap.params import STAPParams
        return STAPParams(
            n_channels=8, n_pulses=32, n_ranges=256, n_beams=6, n_hard_bins=8,
            n_training=64, pulse_len=16, cfar_window=12, cfar_guard=3, pfa=1e-6,
        )

    @pytest.fixture(scope="class")
    def metered(self, small_params):
        return _run(small_params, metrics_interval=0.25)

    def test_artifact_valid_and_populated(self, metered):
        d = metered.metrics
        assert validate_metrics_dict(d) == []
        assert d["interval"] == 0.25
        assert d["samples"] > 0
        assert d["t_end"] == pytest.approx(metered.elapsed_sim_time)

    def test_expected_instrument_families(self, metered):
        d = metered.metrics
        gauge_names = {parse_qualified_name(q)[0] for q in d["gauges"]}
        assert {"pfs_server_queue_depth", "pfs_server_busy_seconds_total",
                "pfs_server_bytes_served_total", "mpi_bytes_total",
                "mpi_messages_total",
                "reader_outstanding_reads"} <= gauge_names
        counter_names = {parse_qualified_name(q)[0] for q in d["counters"]}
        assert "task_phase_seconds_total" in counter_names
        assert "cpi_latency_seconds" in {
            parse_qualified_name(q)[0] for q in d["histograms"]
        }
        assert "net_link_busy_fraction" in d["summaries"]

    def test_byte_gauges_agree_with_disk_stats(self, metered):
        served = sum(
            v for q, v in metered.metrics["gauges"].items()
            if parse_qualified_name(q)[0] == "pfs_server_bytes_served_total"
        )
        assert served == metered.disk_stats["bytes_served"]

    def test_latency_histogram_totals(self, metered):
        hist = next(
            h for q, h in metered.metrics["histograms"].items()
            if parse_qualified_name(q)[0] == "cpi_latency_seconds"
        )
        assert hist["count"] == len(metered.measurement.latencies)
        assert hist["sum"] == pytest.approx(sum(metered.measurement.latencies))

    def test_round_trip_through_dict(self, metered):
        clone = PipelineResult.from_dict(metered.to_dict())
        assert clone.metrics == metered.metrics
        assert clone.to_dict() == metered.to_dict()

    def test_bottleneck_profile(self, metered):
        prof = bottleneck_profile(metered)
        assert 0.0 < prof["disk_util"] <= 1.0
        assert prof["compute_util"] > 0.0
        assert prof["bottleneck"] in ("disk", "compute")

    def test_bottleneck_profile_needs_metrics(self, small_params):
        res = _run(small_params)
        with pytest.raises(ValueError, match="no metrics"):
            bottleneck_profile(res)


class TestReportHelpers:
    def test_parse_qualified_name(self):
        assert parse_qualified_name("x") == ("x", {})
        assert parse_qualified_name('x{a="1",b="two"}') == (
            "x", {"a": "1", "b": "two"}
        )

    def test_series_by_name_filters_on_base(self):
        metrics = {"series": {
            'q{server="0"}': {"t": [0], "v": [1]},
            'q{server="1"}': {"t": [0], "v": [2]},
            "other": {"t": [0], "v": [3]},
        }}
        assert set(series_by_name(metrics, "q")) == {
            'q{server="0"}', 'q{server="1"}'
        }

    def test_time_weighted_mean_stepwise(self):
        # v=2 over [0,1), v=4 over [1,3): mean = (2*1 + 4*2) / 3
        assert time_weighted_mean([0.0, 1.0], [2.0, 4.0], 3.0) == pytest.approx(
            10.0 / 3.0
        )


class TestEngineAndStore:
    def test_spec_hash_distinguishes_metrics_runs(self, small_params):
        from repro.bench.engine import ExperimentSpec

        a = NodeAssignment.balanced(small_params, 14)
        base = ExperimentSpec(assignment=a, params=small_params,
                              cfg=ExecutionConfig(n_cpis=4, warmup=1))
        metered = ExperimentSpec(
            assignment=a, params=small_params,
            cfg=ExecutionConfig(n_cpis=4, warmup=1, metrics_interval=0.25),
        )
        assert base.spec_hash() != metered.spec_hash()

    def test_store_round_trips_metrics(self, small_params, tmp_path):
        from repro.bench.engine import ExperimentSpec, SweepRunner
        from repro.bench.store import ResultStore

        spec = ExperimentSpec(
            assignment=NodeAssignment.balanced(small_params, 14),
            params=small_params,
            fs=FSConfig("pfs", stripe_factor=8),
            cfg=ExecutionConfig(n_cpis=4, warmup=1, metrics_interval=0.25),
        )
        store = ResultStore(tmp_path / "cache")
        runner = SweepRunner(jobs=1, store=store)
        fresh = runner.run_one(spec)
        cached = SweepRunner(jobs=1, store=store).run_one(spec)
        assert cached.metrics == fresh.metrics
        assert validate_metrics_dict(cached.metrics) == []

    def test_fault_counters_surface(self, small_params):
        """A crash-and-recover run exposes the retry/outage instruments."""
        from repro.bench.engine import ExperimentSpec, ServerCrash, run_spec

        spec = ExperimentSpec(
            assignment=NodeAssignment.balanced(small_params, 14),
            params=small_params,
            fs=FSConfig("pfs", stripe_factor=4, replication=2),
            cfg=ExecutionConfig(n_cpis=4, warmup=1, metrics_interval=0.25),
            server_crash=ServerCrash(server=0, at_time=0.0, down_for=0.5),
        )
        result = run_spec(spec)
        gauges = result.metrics["gauges"]
        names = {parse_qualified_name(q)[0] for q in gauges}
        assert {"pfs_requests_failed_total", "pfs_server_outages_total",
                "pfs_client_retries_total",
                "pfs_client_failovers_total"} <= names
        assert gauges["pfs_server_outages_total"] >= 1
        assert gauges["pfs_client_retries_total"] >= 1
